"""Aggregation operators over data cubes.

Section 2 of the paper notes that its techniques apply to SUM and "any
binary operator ⊕ for which there exists an inverse binary operator ⊖
such that a ⊕ b ⊖ b = a" — i.e. any commutative group.  COUNT is SUM
over unit weights; AVERAGE is the quotient of the two; ROLLING variants
slide a window of range queries along one dimension.

:class:`GroupOperator` captures the group structure so user-defined
invertible operators (e.g. products of positive numbers via logarithms,
vector sums) can ride the same machinery.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..exceptions import ConfigurationError, InvalidRangeError

__all__ = [
    "GroupOperator",
    "SUM",
    "XOR",
    "AggregateResult",
    "rolling_windows",
]


@dataclass(frozen=True)
class GroupOperator:
    """An invertible (group) aggregation operator.

    Attributes:
        name: operator name for error messages and reports.
        combine: the binary operator ``⊕``.
        invert: the inverse operator ``⊖`` satisfying ``(a ⊕ b) ⊖ b = a``.
        identity: the neutral element.
    """

    name: str
    combine: Callable = field(repr=False)
    invert: Callable = field(repr=False)
    identity: object = 0

    def fold(self, values) -> object:
        """Combine an iterable of values."""
        accumulator = self.identity
        for value in values:
            accumulator = self.combine(accumulator, value)
        return accumulator


#: Ordinary addition — the paper's running example.
SUM = GroupOperator("sum", combine=lambda a, b: a + b, invert=lambda a, b: a - b)

#: Exclusive-or: its own inverse; a compact demonstration that any group works.
XOR = GroupOperator(
    "xor", combine=lambda a, b: a ^ b, invert=lambda a, b: a ^ b, identity=0
)


@dataclass(frozen=True)
class AggregateResult:
    """Result of a SUM/COUNT/AVERAGE query over a cube region.

    ``average`` is ``None`` when the region holds no records, mirroring
    SQL's NULL-on-empty semantics rather than raising.
    """

    total: object
    count: int

    @property
    def average(self) -> float | None:
        if self.count == 0:
            return None
        return self.total / self.count


def rolling_windows(length: int, window: int) -> list[tuple[int, int]]:
    """Inclusive index windows for a rolling aggregate along a dimension.

    Produces ``length - window + 1`` windows ``(start, start + window - 1)``.
    Raises :class:`ValueError` for a window longer than the dimension.
    """
    if window < 1:
        raise ConfigurationError(f"window must be >= 1, got {window}")
    if window > length:
        raise InvalidRangeError(f"window {window} exceeds dimension length {length}")
    return [(start, start + window - 1) for start in range(length - window + 1)]
