"""The data-cube facade: the analyst-facing API of the paper's introduction.

A :class:`DataCube` binds a :class:`~repro.olap.schema.CubeSchema` to any
registered range-sum method and answers the queries the paper motivates —
"find the average daily sales to customers between the ages of 27 and 45
during the time period December 7 to December 31" — while supporting the
*dynamic* updates whose cost the paper is about:

    >>> cube = DataCube(schema, method="ddc")
    >>> cube.insert({"age": 37, "day": 220}, 129.0)   # a sale happens
    >>> cube.sum(age=(27, 45), day=(220, 222))        # an ad-hoc range query

SUM is served by the underlying structure directly; COUNT by a companion
unit-weight cube over the same method; AVERAGE as their quotient
(Section 2's invertible-operator remark).
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ConfigurationError, InvalidRangeError, SchemaError
from ..methods.registry import create_method
from .aggregates import AggregateResult, rolling_windows
from .schema import CubeSchema

__all__ = ["DataCube"]


class DataCube:
    """An updatable OLAP data cube over a chosen range-sum method.

    Args:
        schema: dimensions and measure definition.
        method: registry name of the backing structure (``"ddc"``,
            ``"ps"``, ``"rps"``, ``"naive"``, ``"fenwick"``,
            ``"basic-ddc"``).
        dtype: measure dtype (``float64`` suits monetary measures).
        track_count: maintain the companion COUNT cube needed for
            AVERAGE; disable to halve storage when only SUM matters.
        **method_options: forwarded to the method constructor
            (``leaf_side``, ``block_side``, ``bc_fanout``, ...).
    """

    def __init__(
        self,
        schema: CubeSchema,
        method: str = "ddc",
        dtype=np.float64,
        track_count: bool = True,
        track_sum_squares: bool = False,
        **method_options,
    ) -> None:
        self.schema = schema
        self.method_name = method
        self._sums = create_method(method, schema.shape, dtype=dtype, **method_options)
        self._counts = (
            create_method(method, schema.shape, dtype=np.int64, **method_options)
            if track_count
            else None
        )
        # Sum of squared measures: like COUNT, a companion cube over an
        # invertible operator, enabling range VARIANCE/STDDEV
        # (Var = E[X^2] - E[X]^2).
        self._sum_squares = (
            create_method(method, schema.shape, dtype=np.float64, **method_options)
            if track_sum_squares
            else None
        )

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def insert(self, point: dict, amount) -> None:
        """Record one measurement: ``measure += amount`` at ``point``.

        ``point`` maps every dimension name to an attribute value, e.g.
        ``{"age": 37, "day": 220}``.
        """
        cell = self.schema.cell_for(point)
        self._sums.add(cell, amount)
        if self._counts is not None:
            self._counts.add(cell, 1)
        if self._sum_squares is not None:
            self._sum_squares.add(cell, float(amount) ** 2)

    def remove(self, point: dict, amount) -> None:
        """Retract a previously recorded measurement (inverse of insert)."""
        cell = self.schema.cell_for(point)
        self._sums.add(cell, -amount)
        if self._counts is not None:
            self._counts.add(cell, -1)
        if self._sum_squares is not None:
            self._sum_squares.add(cell, -(float(amount) ** 2))

    def load_records(self, records, amount_key: str | None = None) -> int:
        """Bulk-ingest an iterable of record dicts; returns how many.

        Each record maps every dimension name to an attribute value plus
        the measure under ``amount_key`` (default: the schema's measure
        name).  The ingest batches through ``add_many``, so methods with
        cheap bulk paths (PS, RPS, Fenwick) load in one pass.
        """
        key = amount_key if amount_key is not None else self.schema.measure
        sums: list[tuple] = []
        counts: list[tuple] = []
        squares: list[tuple] = []
        loaded = 0
        for record in records:
            record = dict(record)
            amount = record.pop(key)
            cell = self.schema.cell_for(record)
            sums.append((cell, amount))
            counts.append((cell, 1))
            squares.append((cell, float(amount) ** 2))
            loaded += 1
        self._sums.add_many(sums)
        if self._counts is not None:
            self._counts.add_many(counts)
        if self._sum_squares is not None:
            self._sum_squares.add_many(squares)
        return loaded

    def set_cell(self, point: dict, total, count: int | None = None) -> None:
        """Overwrite one cell's aggregate directly (bulk-load style)."""
        cell = self.schema.cell_for(point)
        self._sums.set(cell, total)
        if self._counts is not None and count is not None:
            self._counts.set(cell, count)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def sum(self, **conditions):
        """Range SUM of the measure; see :meth:`aggregate` for conditions."""
        low, high = self.schema.ranges_for(conditions)
        return self._sums.range_sum(low, high)

    def count(self, **conditions) -> int:
        """Number of recorded measurements in the range."""
        if self._counts is None:
            raise RuntimeError("cube was created with track_count=False")
        low, high = self.schema.ranges_for(conditions)
        return int(self._counts.range_sum(low, high))

    def average(self, **conditions) -> float | None:
        """Range AVERAGE (``None`` over an empty region)."""
        return self.aggregate(**conditions).average

    def aggregate(self, **conditions) -> AggregateResult:
        """SUM and COUNT together.

        Each keyword names a dimension and gives either one attribute
        value or an inclusive ``(low, high)`` tuple; unnamed dimensions
        roll up over their full extent.
        """
        low, high = self.schema.ranges_for(conditions)
        total = self._sums.range_sum(low, high)
        count = (
            int(self._counts.range_sum(low, high)) if self._counts is not None else 0
        )
        return AggregateResult(total=total, count=count)

    def variance(self, **conditions) -> float | None:
        """Population variance of the measure over the range.

        Requires ``track_sum_squares=True``.  Computed from the three
        companion cubes as ``E[X^2] - E[X]^2`` — each term is itself a
        range sum, so variance queries cost three range queries.
        Returns ``None`` over an empty region.
        """
        if self._sum_squares is None:
            raise RuntimeError("cube was created with track_sum_squares=False")
        if self._counts is None:
            raise RuntimeError("cube was created with track_count=False")
        low, high = self.schema.ranges_for(conditions)
        count = int(self._counts.range_sum(low, high))
        if count == 0:
            return None
        total = float(self._sums.range_sum(low, high))
        total_squares = float(self._sum_squares.range_sum(low, high))
        mean = total / count
        # Clamp tiny negative values from floating-point cancellation.
        return max(total_squares / count - mean * mean, 0.0)

    def stddev(self, **conditions) -> float | None:
        """Population standard deviation over the range (or ``None``)."""
        variance = self.variance(**conditions)
        if variance is None:
            return None
        return variance**0.5

    def series(self, dimension: str, **conditions) -> list[tuple]:
        """Per-position totals along a dimension: ``(value, sum)`` pairs.

        The breakdown analysts chart — e.g. daily sales over December
        with the other dimensions restricted as in :meth:`sum`.
        """
        target = self.schema.dimension(dimension)
        if dimension in conditions:
            condition = conditions.pop(dimension)
            if isinstance(condition, tuple) and len(condition) == 2:
                low_index, high_index = target.index_range(*condition)
            else:
                low_index = high_index = target.index_of(condition)
        else:
            low_index, high_index = target.full_range()
        points = []
        for index in range(low_index, high_index + 1):
            value = target.value_of(index)
            point_conditions = dict(conditions)
            point_conditions[dimension] = value
            points.append((value, self.sum(**point_conditions)))
        return points

    # ------------------------------------------------------------------
    # Rollup / pivot (the GBLP96 data-cube operators)
    # ------------------------------------------------------------------

    def rollup(self, dimension: str, buckets, **conditions) -> list[tuple]:
        """Group the measure into labelled buckets along one dimension.

        ``buckets`` is an iterable of ``(label, condition)`` pairs where
        each condition is an attribute value or an inclusive ``(low,
        high)`` tuple for ``dimension`` (e.g. the output of
        :meth:`DateDimension.months <repro.olap.time.DateDimension.months>`).
        Remaining ``conditions`` restrict the other dimensions.  Returns
        ``(label, sum)`` pairs in bucket order — each bucket is one range
        query, so a 12-month rollup costs 12 polylog queries.
        """
        self.schema.dimension(dimension)  # validate the name early
        results = []
        for label, condition in buckets:
            bucket_conditions = dict(conditions)
            bucket_conditions[dimension] = condition
            results.append((label, self.sum(**bucket_conditions)))
        return results

    def pivot(
        self, row_dimension: str, row_buckets, column_dimension: str, column_buckets,
        **conditions,
    ) -> list[list]:
        """A two-way rollup: rows x columns of range sums.

        Returns a list of rows; each row is ``[row_label, v1, v2, ...]``
        with one value per column bucket.  The classic cross-tab
        (e.g. age band x month).
        """
        if row_dimension == column_dimension:
            raise SchemaError("pivot needs two distinct dimensions")
        column_buckets = list(column_buckets)
        table = []
        for row_label, row_condition in row_buckets:
            row_conditions = dict(conditions)
            row_conditions[row_dimension] = row_condition
            row = [row_label]
            for _, column_condition in column_buckets:
                cell_conditions = dict(row_conditions)
                cell_conditions[column_dimension] = column_condition
                row.append(self.sum(**cell_conditions))
            table.append(row)
        return table

    def top_k(self, dimension: str, k: int, **conditions) -> list[tuple]:
        """The ``k`` dimension values with the largest restricted sums.

        Returns ``(value, sum)`` pairs sorted by descending sum.  Ties
        break by dimension order.  Costs one range query per index of
        the dimension.
        """
        if k < 1:
            raise ConfigurationError(f"k must be >= 1, got {k}")
        series = self.series(dimension, **conditions)
        ranked = sorted(series, key=lambda pair: -pair[1])
        return ranked[:k]

    def cell(self, point: dict):
        """Aggregate value stored at a single fully-specified point."""
        return self._sums.get(self.schema.cell_for(point))

    def rolling_sum(self, dimension: str, window: int, **conditions) -> list[tuple]:
        """ROLLING SUM along a dimension: ``(window_start_value, sum)`` pairs.

        The window slides over the named dimension (or over the sub-range
        supplied for it in ``conditions``); remaining conditions restrict
        the other dimensions as in :meth:`sum`.
        """
        target = self.schema.dimension(dimension)
        if dimension in conditions:
            condition = conditions.pop(dimension)
            if not (isinstance(condition, tuple) and len(condition) == 2):
                raise InvalidRangeError("rolling dimension condition must be a (low, high) tuple")
            base_low, base_high = target.index_range(*condition)
        else:
            base_low, base_high = target.full_range()
        length = base_high - base_low + 1
        series = []
        for start, stop in rolling_windows(length, window):
            window_conditions = dict(conditions)
            window_conditions[dimension] = (
                target.value_of(base_low + start),
                target.value_of(base_low + stop),
            )
            series.append(
                (target.value_of(base_low + start), self.sum(**window_conditions))
            )
        return series

    def rolling_average(
        self, dimension: str, window: int, **conditions
    ) -> list[tuple]:
        """ROLLING AVERAGE along a dimension: ``(start_value, avg | None)``."""
        sums = self.rolling_sum(dimension, window, **dict(conditions))
        if self._counts is None:
            raise RuntimeError("cube was created with track_count=False")
        counts = _rolling_counts(self, dimension, window, conditions)
        return [
            (value, total / count if count else None)
            for (value, total), count in zip(sums, counts)
        ]

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------

    @property
    def stats(self):
        """Operation counter of the SUM structure."""
        return self._sums.stats

    def memory_cells(self) -> int:
        """Allocated cells across all companion structures."""
        cells = self._sums.memory_cells()
        if self._counts is not None:
            cells += self._counts.memory_cells()
        if self._sum_squares is not None:
            cells += self._sum_squares.memory_cells()
        return cells

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DataCube(measure={self.schema.measure!r}, "
            f"dims={self.schema.names}, method={self.method_name!r})"
        )


def _rolling_counts(
    cube: DataCube, dimension: str, window: int, conditions: dict
) -> list[int]:
    """COUNT series matching :meth:`DataCube.rolling_sum`'s windows."""
    target = cube.schema.dimension(dimension)
    if dimension in conditions:
        base_low, base_high = target.index_range(*conditions[dimension])
    else:
        base_low, base_high = target.full_range()
    length = base_high - base_low + 1
    counts = []
    for start, stop in rolling_windows(length, window):
        window_conditions = dict(conditions)
        window_conditions.pop(dimension, None)
        window_conditions[dimension] = (
            target.value_of(base_low + start),
            target.value_of(base_low + stop),
        )
        counts.append(cube.count(**window_conditions))
    return counts
