"""Calendar support: a date-valued dimension with rollup range helpers.

The paper's DATE_AND_TIME dimension ("what were the total sales ... on
the 8th of December?", "December 7 to December 31") is calendar-shaped:
analysts phrase ranges as days, months, and quarters.  A
:class:`DateDimension` maps :class:`datetime.date` values onto dense day
indexes and offers the rollup helpers that turn calendar phrases into
inclusive (low, high) conditions for :class:`~repro.olap.cube.DataCube`
queries.
"""

from __future__ import annotations

import datetime

from ..exceptions import SchemaError
from .schema import Dimension

__all__ = ["DateDimension"]

_QUARTER_FIRST_MONTH = {1: 1, 2: 4, 3: 7, 4: 10}


class DateDimension(Dimension):
    """Consecutive calendar days ``start .. start + days - 1``."""

    def __init__(self, name: str, start: datetime.date, days: int) -> None:
        super().__init__(name)
        if days < 1:
            raise SchemaError(f"dimension {name!r}: needs at least one day")
        self.start = start
        self.days = int(days)

    @property
    def size(self) -> int:
        return self.days

    @property
    def end(self) -> datetime.date:
        """Last covered day (inclusive)."""
        return self.start + datetime.timedelta(days=self.days - 1)

    def index_of(self, value) -> int:
        if isinstance(value, datetime.datetime):
            value = value.date()
        if not isinstance(value, datetime.date):
            raise SchemaError(
                f"dimension {self.name!r}: expected a date, got {value!r}"
            )
        index = (value - self.start).days
        if not 0 <= index < self.days:
            raise SchemaError(
                f"dimension {self.name!r}: {value} outside "
                f"[{self.start}, {self.end}]"
            )
        return index

    def value_of(self, index: int) -> datetime.date:
        if not 0 <= index < self.days:
            raise SchemaError(f"dimension {self.name!r}: index {index} out of range")
        return self.start + datetime.timedelta(days=index)

    # -- calendar rollup helpers ----------------------------------------

    def _clip(self, low: datetime.date, high: datetime.date):
        low = max(low, self.start)
        high = min(high, self.end)
        if low > high:
            raise SchemaError(
                f"dimension {self.name!r}: range [{low}, {high}] outside domain"
            )
        return low, high

    def month(self, year: int, month: int) -> tuple[datetime.date, datetime.date]:
        """Inclusive date range of one calendar month, clipped to the domain."""
        first = datetime.date(year, month, 1)
        if month == 12:
            last = datetime.date(year, 12, 31)
        else:
            last = datetime.date(year, month + 1, 1) - datetime.timedelta(days=1)
        return self._clip(first, last)

    def quarter(self, year: int, quarter: int) -> tuple[datetime.date, datetime.date]:
        """Inclusive date range of one calendar quarter, clipped."""
        if quarter not in _QUARTER_FIRST_MONTH:
            raise SchemaError(f"quarter must be 1-4, got {quarter}")
        first_month = _QUARTER_FIRST_MONTH[quarter]
        first = datetime.date(year, first_month, 1)
        if quarter == 4:
            last = datetime.date(year, 12, 31)
        else:
            last = datetime.date(year, first_month + 3, 1) - datetime.timedelta(days=1)
        return self._clip(first, last)

    def year(self, year: int) -> tuple[datetime.date, datetime.date]:
        """Inclusive date range of one calendar year, clipped."""
        return self._clip(datetime.date(year, 1, 1), datetime.date(year, 12, 31))

    # -- rollup bucket generators ----------------------------------------

    def months(self) -> list[tuple[str, tuple[datetime.date, datetime.date]]]:
        """``("YYYY-MM", (first, last))`` buckets covering the domain."""
        buckets = []
        cursor = datetime.date(self.start.year, self.start.month, 1)
        while cursor <= self.end:
            label = f"{cursor.year:04d}-{cursor.month:02d}"
            buckets.append((label, self.month(cursor.year, cursor.month)))
            if cursor.month == 12:
                cursor = datetime.date(cursor.year + 1, 1, 1)
            else:
                cursor = datetime.date(cursor.year, cursor.month + 1, 1)
        return buckets

    def quarters(self) -> list[tuple[str, tuple[datetime.date, datetime.date]]]:
        """``("YYYY-Qn", (first, last))`` buckets covering the domain."""
        buckets = []
        year = self.start.year
        quarter = (self.start.month - 1) // 3 + 1
        while True:
            first_month = _QUARTER_FIRST_MONTH[quarter]
            first = datetime.date(year, first_month, 1)
            if first > self.end:
                break
            buckets.append((f"{year:04d}-Q{quarter}", self.quarter(year, quarter)))
            quarter += 1
            if quarter == 5:
                quarter = 1
                year += 1
        return buckets
