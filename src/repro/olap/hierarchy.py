"""Hierarchical dimensions: drill-down paths as contiguous index ranges.

OLAP dimensions are usually hierarchies — region → country → city,
category → product — and analysts aggregate at any level ("sales for
EMEA", "sales for Germany", "sales for Berlin").  Laying the hierarchy's
leaves out in depth-first order makes every internal node a *contiguous*
index range, so a rollup at any level is a single range-sum query on the
cube — the same O(log^d n) operation as any other range.

Example::

    geo = HierarchyDimension("geo", {
        "emea": {"de": ["berlin", "munich"], "fr": ["paris"]},
        "amer": {"us": ["nyc", "sf"]},
    })
    geo.index_of("berlin")          # leaves are addressable values
    geo.range_of("de")              # ("berlin", "munich") as an index range
    geo.buckets(level=1)            # [("de", ...), ("fr", ...), ("us", ...)]
    cube.sum(geo=geo.member("emea"))  # one range query
"""

from __future__ import annotations

from ..exceptions import SchemaError
from .schema import Dimension

__all__ = ["HierarchyDimension"]


class _Node:
    __slots__ = ("label", "depth", "low", "high", "children")

    def __init__(self, label, depth: int) -> None:
        self.label = label
        self.depth = depth
        self.low = 0
        self.high = 0
        self.children: list["_Node"] = []


def _build(label, spec, depth: int) -> _Node:
    node = _Node(label, depth)
    if isinstance(spec, dict):
        for child_label, child_spec in spec.items():
            node.children.append(_build(child_label, child_spec, depth + 1))
    elif isinstance(spec, (list, tuple)):
        for child_label in spec:
            if isinstance(child_label, (dict, list, tuple)):
                raise SchemaError("hierarchy lists must contain leaf labels")
            node.children.append(_Node(child_label, depth + 1))
    else:
        raise SchemaError(f"invalid hierarchy node spec: {spec!r}")
    if not node.children:
        raise SchemaError(f"hierarchy member {label!r} has no leaves")
    return node


class HierarchyDimension(Dimension):
    """A dimension whose values form a tree of labelled levels.

    Args:
        name: dimension name.
        hierarchy: nested mapping (or list at the deepest level).  Keys
            are member labels; leaves are the addressable values of the
            dimension.  Labels must be unique across the whole tree.
    """

    def __init__(self, name: str, hierarchy: dict) -> None:
        super().__init__(name)
        if not isinstance(hierarchy, dict) or not hierarchy:
            raise SchemaError(f"dimension {name!r}: hierarchy must be a non-empty dict")
        self._root = _Node("__root__", 0)
        for label, spec in hierarchy.items():
            if isinstance(spec, (dict, list, tuple)):
                self._root.children.append(_build(label, spec, 1))
            else:
                raise SchemaError(f"invalid hierarchy node spec: {spec!r}")

        self._leaves: list = []
        self._members: dict = {}
        self._assign(self._root)
        if len(self._members) != self._count_members(self._root) - 1:
            raise SchemaError(f"dimension {name!r}: duplicate labels in hierarchy")
        self._leaf_index = {leaf: position for position, leaf in enumerate(self._leaves)}
        if len(self._leaf_index) != len(self._leaves):
            raise SchemaError(f"dimension {name!r}: duplicate leaf values")

    def _assign(self, node: _Node) -> None:
        node.low = len(self._leaves)
        if not node.children:
            self._leaves.append(node.label)
        for child in node.children:
            self._assign(child)
            if child.label in self._members:
                # flagged later by the count check; keep the first
                continue
            self._members[child.label] = child
        node.high = len(self._leaves) - 1

    def _count_members(self, node: _Node) -> int:
        return 1 + sum(self._count_members(child) for child in node.children)

    # -- Dimension interface ------------------------------------------------

    @property
    def size(self) -> int:
        return len(self._leaves)

    def index_of(self, value) -> int:
        try:
            return self._leaf_index[value]
        except KeyError:
            if value in self._members:
                raise SchemaError(
                    f"dimension {self.name!r}: {value!r} is an internal level; "
                    "use member() for group conditions"
                ) from None
            raise SchemaError(
                f"dimension {self.name!r}: unknown value {value!r}"
            ) from None

    def value_of(self, index: int):
        if not 0 <= index < len(self._leaves):
            raise SchemaError(f"dimension {self.name!r}: index {index} out of range")
        return self._leaves[index]

    # -- hierarchy navigation -------------------------------------------------

    def member(self, label) -> tuple:
        """The inclusive leaf-value range covered by a hierarchy member.

        Usable directly as a query condition:
        ``cube.sum(geo=geo.member("emea"))``.
        """
        node = self._members.get(label)
        if node is None:
            if label in self._leaf_index:
                return (label, label)
            raise SchemaError(f"dimension {self.name!r}: unknown member {label!r}")
        return (self._leaves[node.low], self._leaves[node.high])

    def range_of(self, label) -> tuple[int, int]:
        """The member's coverage as an inclusive index range."""
        low_value, high_value = self.member(label)
        return self._leaf_index[low_value], self._leaf_index[high_value]

    def depth(self) -> int:
        """Number of levels below the (implicit) root."""

        def deepest(node: _Node) -> int:
            if not node.children:
                return node.depth
            return max(deepest(child) for child in node.children)

        return deepest(self._root)

    def members_at(self, level: int) -> list:
        """Labels of every member at the given level (1 = top)."""
        if level < 1:
            raise SchemaError(f"level must be >= 1, got {level}")
        found = []

        def walk(node: _Node) -> None:
            for child in node.children:
                if child.depth == level:
                    found.append(child.label)
                else:
                    walk(child)

        walk(self._root)
        return found

    def buckets(self, level: int) -> list[tuple]:
        """``(label, condition)`` rollup buckets for one hierarchy level.

        Feed straight into :meth:`DataCube.rollup
        <repro.olap.cube.DataCube.rollup>`.
        """
        return [(label, self.member(label)) for label in self.members_at(level)]

    def leaves_of(self, label) -> list:
        """All leaf values under a member, in index order."""
        low, high = self.range_of(label)
        return self._leaves[low : high + 1]
