"""Bivariate range statistics: covariance and correlation over regions.

Section 2's invertible-operator observation reaches further than SUM:
any statistic expressible in sums of products is range-queryable.  For
two measures X and Y recorded at the same points, maintaining the six
companion cubes

    count, ΣX, ΣY, ΣX², ΣY², ΣXY

makes COV(X, Y) = E[XY] − E[X]·E[Y] and Pearson's r computable for *any*
hyper-rectangular region in six range queries — e.g. "how correlated are
ad spend and sales for 27-45 year olds in December?", answered in
O(log^d n) per term on a Dynamic Data Cube while both measures keep
streaming in.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..exceptions import SchemaError
from ..methods.registry import create_method
from .schema import CubeSchema

__all__ = ["BivariateSummary", "BivariateCube"]


@dataclass(frozen=True)
class BivariateSummary:
    """Moments of a region, plus the derived statistics."""

    count: int
    sum_x: float
    sum_y: float
    sum_xx: float
    sum_yy: float
    sum_xy: float

    @property
    def mean_x(self) -> float | None:
        return self.sum_x / self.count if self.count else None

    @property
    def mean_y(self) -> float | None:
        return self.sum_y / self.count if self.count else None

    @property
    def covariance(self) -> float | None:
        """Population covariance (``None`` over an empty region)."""
        if self.count == 0:
            return None
        return self.sum_xy / self.count - (self.sum_x / self.count) * (
            self.sum_y / self.count
        )

    @property
    def variance_x(self) -> float | None:
        if self.count == 0:
            return None
        mean = self.sum_x / self.count
        return max(self.sum_xx / self.count - mean * mean, 0.0)

    @property
    def variance_y(self) -> float | None:
        if self.count == 0:
            return None
        mean = self.sum_y / self.count
        return max(self.sum_yy / self.count - mean * mean, 0.0)

    @property
    def correlation(self) -> float | None:
        """Pearson's r; ``None`` when either measure is constant or empty."""
        covariance = self.covariance
        if covariance is None:
            return None
        spread = self.variance_x * self.variance_y
        if spread <= 0:
            return None
        # Clamp floating-point drift to the legal interval.
        return max(-1.0, min(1.0, covariance / math.sqrt(spread)))


class BivariateCube:
    """Two synchronised measures over one schema, range-analysable.

    Args:
        schema: shared dimensions (the measure name in the schema is
            ignored; measures are named here).
        x: name of the first measure, y: name of the second.
        method: backing range-sum method for all six companion cubes.
        **method_options: forwarded to the method constructor.
    """

    def __init__(
        self,
        schema: CubeSchema,
        x: str = "x",
        y: str = "y",
        method: str = "ddc",
        **method_options,
    ) -> None:
        if x == y:
            raise SchemaError("the two measures need distinct names")
        self.schema = schema
        self.x_name = x
        self.y_name = y
        self.method_name = method
        shape = schema.shape

        def make(dtype):
            return create_method(method, shape, dtype=dtype, **method_options)

        self._count = make(np.int64)
        self._sum_x = make(np.float64)
        self._sum_y = make(np.float64)
        self._sum_xx = make(np.float64)
        self._sum_yy = make(np.float64)
        self._sum_xy = make(np.float64)

    def insert(self, point: dict, x, y) -> None:
        """Record one observation of both measures at ``point``."""
        cell = self.schema.cell_for(point)
        x = float(x)
        y = float(y)
        self._count.add(cell, 1)
        self._sum_x.add(cell, x)
        self._sum_y.add(cell, y)
        self._sum_xx.add(cell, x * x)
        self._sum_yy.add(cell, y * y)
        self._sum_xy.add(cell, x * y)

    def remove(self, point: dict, x, y) -> None:
        """Retract a previously recorded observation."""
        cell = self.schema.cell_for(point)
        x = float(x)
        y = float(y)
        self._count.add(cell, -1)
        self._sum_x.add(cell, -x)
        self._sum_y.add(cell, -y)
        self._sum_xx.add(cell, -x * x)
        self._sum_yy.add(cell, -y * y)
        self._sum_xy.add(cell, -x * y)

    def summary(self, **conditions) -> BivariateSummary:
        """All six moments over a region — six range queries."""
        low, high = self.schema.ranges_for(conditions)
        return BivariateSummary(
            count=int(self._count.range_sum(low, high)),
            sum_x=float(self._sum_x.range_sum(low, high)),
            sum_y=float(self._sum_y.range_sum(low, high)),
            sum_xx=float(self._sum_xx.range_sum(low, high)),
            sum_yy=float(self._sum_yy.range_sum(low, high)),
            sum_xy=float(self._sum_xy.range_sum(low, high)),
        )

    def covariance(self, **conditions) -> float | None:
        """Population COV(X, Y) over the region (``None`` when empty)."""
        return self.summary(**conditions).covariance

    def correlation(self, **conditions) -> float | None:
        """Pearson's r over the region (``None`` when undefined)."""
        return self.summary(**conditions).correlation

    def memory_cells(self) -> int:
        """Allocated cells across all six companion structures."""
        return sum(
            structure.memory_cells()
            for structure in (
                self._count,
                self._sum_x,
                self._sum_y,
                self._sum_xx,
                self._sum_yy,
                self._sum_xy,
            )
        )
