#!/usr/bin/env python3
"""Picking the right structure: the paper's trade-off surface in practice.

The Dynamic Data Cube is not a universal winner — it is the point on the
query/update trade-off surface that makes *interactive, growing, sparse*
cubes feasible.  This example runs the model-driven advisor over the
paper's motivating scenarios, then validates one recommendation
empirically by replaying the described workload on the recommended
method and on the runner-up.

Run:  python examples/method_advisor.py
"""

from __future__ import annotations

from repro.advisor import WorkloadProfile, recommend
from repro.methods import build_method
from repro.workloads import dense_uniform, interleaved, random_ranges, random_updates, RangeQuery

SCENARIOS = {
    "batch-loaded reporting warehouse (read-only)": WorkloadProfile(
        n=10_000, d=4, query_fraction=1.0, updates_per_batch=1_000_000
    ),
    "internet commerce (updates every second)": WorkloadProfile(
        n=10_000, d=4, query_fraction=0.5, updates_per_batch=1
    ),
    "raw event log (write-only, rarely queried)": WorkloadProfile(
        n=100_000, d=2, query_fraction=0.0
    ),
    "star catalog (sparse, growing in any direction)": WorkloadProfile(
        n=1_000_000, d=3, query_fraction=0.7, density=1e-9, needs_growth=True
    ),
    "EOSDIS environmental grid (clustered)": WorkloadProfile(
        n=50_000, d=2, query_fraction=0.8, density=0.004
    ),
    "interactive what-if session": WorkloadProfile(
        n=1_000, d=2, query_fraction=0.5, updates_per_batch=1
    ),
}


def main() -> None:
    print("Model-driven method recommendations\n" + "=" * 60)
    for label, profile in SCENARIOS.items():
        result = recommend(profile)
        print(f"\n{label}")
        print(f"  -> {result.method}  "
              f"(~{result.expected_op_cost:,.0f} modelled ops/operation)")
        for reason in result.reasons:
            print(f"     - {reason}")

    # -- Validate one verdict empirically -------------------------------
    print("\n" + "=" * 60)
    print("Empirical check: the interactive what-if session at n=128, d=2")
    shape = (128, 128)
    data = dense_uniform(shape, seed=77)
    queries = random_ranges(shape, 150, selectivity=0.3, seed=78)
    updates = random_updates(shape, 150, seed=79)
    session = list(interleaved(queries, updates, 0.5, seed=80))
    for name in ("ddc", "ps", "naive"):
        method = build_method(name, data)
        method.stats.reset()
        for operation in session:
            if isinstance(operation, RangeQuery):
                method.range_sum(operation.low, operation.high)
            else:
                method.add(operation.cell, operation.delta)
        print(f"  {name:>6}: {method.stats.total_cell_ops:>10,} logical cell ops")
    print("  (the advisor's pick should carry the smallest bill)")


if __name__ == "__main__":
    main()
