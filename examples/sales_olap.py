#!/usr/bin/env python3
"""The paper's motivating OLAP scenario: SALES by CUSTOMER_AGE and DATE.

"One may construct a data cube from the database with SALES as a measure
attribute and CUSTOMER_AGE and DATE_AND_TIME as dimensions. ...  find the
average daily sales to customers between the ages of 27 and 45 during
the time period December 7 to December 31."

This example builds that cube on the Dynamic Data Cube, streams a year
of synthetic sales into it *one transaction at a time* (the dynamic-
update regime the paper argues for — think Internet commerce, not batch
loads), and answers the paper's query plus a few rolling analyses while
sales keep arriving.

Run:  python examples/sales_olap.py
"""

from __future__ import annotations

import numpy as np

from repro.olap import CubeSchema, DataCube, IntegerDimension

DAYS_IN_YEAR = 365
DECEMBER_7 = 340
DECEMBER_31 = 364


def make_cube(method: str = "ddc") -> DataCube:
    schema = CubeSchema(
        [
            IntegerDimension("age", 18, 90),
            IntegerDimension("day", 0, DAYS_IN_YEAR - 1),
        ],
        measure="sales",
    )
    return DataCube(schema, method=method)


def simulate_year(cube: DataCube, transactions: int = 20_000, seed: int = 7) -> None:
    """Stream individual sales into the cube (no batch loading)."""
    rng = np.random.default_rng(seed)
    # Older customers buy less often; December is the busy season.
    ages = 18 + (rng.beta(2.0, 3.5, size=transactions) * 72).astype(int)
    day_weights = np.ones(DAYS_IN_YEAR)
    day_weights[DECEMBER_7:] = 3.0  # holiday rush
    day_weights /= day_weights.sum()
    days = rng.choice(DAYS_IN_YEAR, size=transactions, p=day_weights)
    amounts = rng.lognormal(mean=3.5, sigma=0.6, size=transactions).round(2)
    for age, day, amount in zip(ages, days, amounts):
        cube.insert({"age": int(age), "day": int(day)}, float(amount))


def main() -> None:
    cube = make_cube()
    print("Streaming 20,000 individual sales into the cube ...")
    simulate_year(cube)
    print(f"Cube loaded; total sales ${cube.sum():,.2f} "
          f"over {cube.count():,} transactions.\n")

    # -- The paper's query ----------------------------------------------
    result = cube.aggregate(age=(27, 45), day=(DECEMBER_7, DECEMBER_31))
    days = DECEMBER_31 - DECEMBER_7 + 1
    print("Paper query: average daily sales to 27-45 year olds, Dec 7-31")
    print(f"  total   ${result.total:,.2f} across {result.count:,} sales")
    print(f"  per-sale average  ${result.average:,.2f}")
    print(f"  per-day average   ${result.total / days:,.2f}\n")

    # -- Live updates mid-analysis ---------------------------------------
    print("A big corporate order lands while the analyst is working ...")
    cube.insert({"age": 41, "day": 350}, 25_000.00)
    updated = cube.aggregate(age=(27, 45), day=(DECEMBER_7, DECEMBER_31))
    print(f"  re-running the query instantly reflects it: "
          f"${updated.total:,.2f} (+${updated.total - result.total:,.2f})\n")

    # -- Rolling analysis -------------------------------------------------
    print("7-day rolling sales to the 27-45 segment (last 4 windows):")
    series = cube.rolling_sum("day", 7, day=(330, DECEMBER_31), age=(27, 45))
    for start_day, total in series[-4:]:
        print(f"  days {start_day:>3}-{start_day + 6:>3}: ${total:>12,.2f}")
    print()

    # -- Drill: age-band comparison ---------------------------------------
    print("December sales by age band:")
    for low, high in [(18, 26), (27, 45), (46, 65), (66, 90)]:
        band = cube.aggregate(age=(low, high), day=(DECEMBER_7, DECEMBER_31))
        print(f"  ages {low:>2}-{high:<2}: ${band.total:>12,.2f} "
              f"({band.count:>5,} sales)")


if __name__ == "__main__":
    main()
