#!/usr/bin/env python3
"""Section 5's EOSDIS scenario: clustered environmental measurements.

"Measurements are made for the entire surface of the planet, yet the
data is essentially clustered; for example, methane gas production is
largely concentrated around agricultural and industrial centers.  There
are vast, unpopulated regions of the data space."

This example builds a methane-production cube over a global grid where
the data sits in a handful of Gaussian clusters, compares what each
method pays in storage for the same logical cube, then brings a *new*
point source on-line ("a new cattle ranch comes on-line in a previously
undeveloped area") and compares the update bills.

Run:  python examples/earth_observation.py
"""

from __future__ import annotations

import numpy as np

from repro import build_method
from repro.olap import BinnedDimension, CubeSchema, DataCube
from repro.workloads import clustered, occupancy

GRID = (256, 256)  # ~1.4 degree cells over latitude x longitude


def main() -> None:
    print("Generating clustered methane measurements "
          f"over a {GRID[0]}x{GRID[1]} global grid ...")
    data = clustered(
        GRID, clusters=6, points_per_cluster=400, spread=0.02, seed=99
    )
    print(f"  occupancy: {100 * occupancy(data):.2f}% of cells populated, "
          f"total emissions {data.sum():,}\n")

    # -- Storage comparison across methods ------------------------------
    print("Storage for the same logical cube (cells actually allocated):")
    for name in ("ps", "rps", "ddc"):
        method = build_method(name, data)
        cells = method.memory_cells()
        print(f"  {name:>4}: {cells:>9,} cells "
              f"({cells / data.size:>6.2f}x the raw grid)")
    print("  The prefix-sum family must materialise the whole domain; the")
    print("  DDC allocates only the populated subtrees (Section 5).\n")

    # -- A new point source appears --------------------------------------
    print("A new cattle ranch comes on-line at a previously empty cell:")
    empty_cell = (200, 30)
    assert data[empty_cell] == 0
    for name in ("ps", "rps", "ddc"):
        method = build_method(name, data)
        method.stats.reset()
        method.add(empty_cell, 500)
        print(f"  {name:>4}: {method.stats.cell_writes:>7,} cells written "
              f"to register one measurement")
    print()

    # -- Scientist queries through the OLAP layer ------------------------
    schema = CubeSchema(
        [
            BinnedDimension("latitude", origin=-90.0, width=180 / GRID[0], bins=GRID[0]),
            BinnedDimension("longitude", origin=-180.0, width=360 / GRID[1], bins=GRID[1]),
        ],
        measure="methane",
    )
    cube = DataCube(schema, method="ddc", dtype=np.int64)
    for (row, col), value in np.ndenumerate(data):
        if value:
            cube.set_cell(
                {
                    "latitude": -90.0 + (row + 0.5) * 180 / GRID[0],
                    "longitude": -180.0 + (col + 0.5) * 360 / GRID[1],
                },
                int(value),
            )
    print("Regional aggregate queries (any arbitrary region of the globe):")
    regions = {
        "northern hemisphere": dict(latitude=(0.0, 89.9)),
        "tropics            ": dict(latitude=(-23.5, 23.5)),
        "one ocean-sized box": dict(latitude=(-40.0, 0.0), longitude=(-160.0, -90.0)),
    }
    for label, conditions in regions.items():
        print(f"  {label}: {cube.sum(**conditions):>12,}")


if __name__ == "__main__":
    main()
