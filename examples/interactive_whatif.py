#!/usr/bin/env python3
"""The introduction's "what-if" scenario: interleaved updates and analysis.

"Business leaders might wish to construct interactive 'what-if'
scenarios using their data cubes, in much the same way that they
construct 'what-if' scenarios using spreadsheets now."

A what-if session is a stream of hypothetical updates interleaved with
analytical range queries — exactly the workload where one-sided methods
fail: the prefix sum answers queries instantly but every hypothetical
edit rewrites a huge region; the naive array absorbs edits instantly but
every analysis scans the cube.  This example replays one identical
session against naive / PS / RPS / DDC and totals each method's bill.

Run:  python examples/interactive_whatif.py
"""

from __future__ import annotations

import time

from repro import build_method
from repro.workloads import (
    dense_uniform,
    interleaved,
    random_ranges,
    random_updates,
    RangeQuery,
)

SHAPE = (128, 128)
SESSION_QUERIES = 300
SESSION_UPDATES = 300


def replay_session(name: str, data, session) -> dict:
    method = build_method(name, data)
    method.stats.reset()
    started = time.perf_counter()
    checksum = 0
    for operation in session:
        if isinstance(operation, RangeQuery):
            checksum += int(operation_result(method, operation))
        else:
            method.add(operation.cell, operation.delta)
    elapsed = time.perf_counter() - started
    return {
        "method": name,
        "cell_ops": method.stats.total_cell_ops,
        "seconds": elapsed,
        "checksum": checksum,
    }


def operation_result(method, query: RangeQuery):
    return method.range_sum(query.low, query.high)


def main() -> None:
    data = dense_uniform(SHAPE, seed=21)
    queries = random_ranges(SHAPE, SESSION_QUERIES, selectivity=0.3, seed=22)
    updates = random_updates(SHAPE, SESSION_UPDATES, seed=23)
    session = list(interleaved(queries, updates, query_fraction=0.5, seed=24))
    print(
        f"What-if session: {SESSION_QUERIES} range queries + "
        f"{SESSION_UPDATES} hypothetical updates, interleaved, on a "
        f"{SHAPE[0]}x{SHAPE[1]} cube.\n"
    )

    results = [
        replay_session(name, data, session)
        for name in ("naive", "ps", "rps", "fenwick", "ddc")
    ]

    checksums = {r["checksum"] for r in results}
    assert len(checksums) == 1, "methods disagreed!"
    print(f"{'method':>8}  {'logical cell ops':>16}  {'wall seconds':>12}")
    for r in sorted(results, key=lambda r: r["cell_ops"]):
        print(f"{r['method']:>8}  {r['cell_ops']:>16,}  {r['seconds']:>12.4f}")
    print("\nAll methods returned identical query results "
          f"(checksum {checksums.pop()}).")
    print("Balanced methods (DDC, Fenwick) win mixed sessions; one-sided")
    print("methods pay on whichever half of the workload they neglected.")


if __name__ == "__main__":
    main()
