#!/usr/bin/env python3
"""Quickstart: range-sum queries and dynamic updates on a data cube.

Builds the same small cube under every method in the library, runs a few
range-sum queries and point updates, and shows the operation counts that
motivate the Dynamic Data Cube: constant-time-query methods pay for it
dearly on updates; the DDC balances both.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import build_method, method_names
from repro.workloads import dense_uniform


def main() -> None:
    shape = (64, 64)
    data = dense_uniform(shape, low=0, high=100, seed=42)
    print(f"Data cube: shape {shape}, total {data.sum()}\n")

    methods = {name: build_method(name, data) for name in method_names()}

    # -- 1. Everyone answers range sums identically --------------------
    low, high = (10, 20), (40, 55)
    print(f"Range sum over [{low} .. {high}] (inclusive):")
    for name, method in methods.items():
        print(f"  {name:>10}: {method.range_sum(low, high)}")
    print()

    # -- 2. A point update, and what it costs each method --------------
    cell = (0, 0)  # the paper's worst case (Figure 5)
    print(f"Updating cell {cell} by +1 — logical cells written:")
    for name, method in methods.items():
        method.stats.reset()
        method.add(cell, 1)
        print(f"  {name:>10}: {method.stats.cell_writes:>6} cell writes")
    print()

    # -- 3. ... and what a query costs afterwards ----------------------
    print(f"Prefix query to {tuple(s - 1 for s in shape)} — logical cells read:")
    for name, method in methods.items():
        method.stats.reset()
        total = method.prefix_sum(tuple(s - 1 for s in shape))
        print(f"  {name:>10}: {method.stats.cell_reads:>6} cell reads  (result {total})")
    print()

    # -- 4. Consistency check ------------------------------------------
    answers = {name: m.range_sum(low, high) for name, m in methods.items()}
    assert len(set(answers.values())) == 1, answers
    print("All methods agree after the update. ✓")


if __name__ == "__main__":
    main()
