#!/usr/bin/env python3
"""Section 5's astronomy scenario: a star catalog that grows in any direction.

"New star systems ... can be found in any direction relative to existing
systems, therefore the data cube must be able to grow in any direction
relative to its existing cells.  The direction of data cube growth
should be determined by the data, and not a priori."

This example streams simulated sky-survey discoveries — drifting
clusters with occasional jumps to fresh regions, including negative
coordinates — into a :class:`GrowableCube`, showing the domain doubling
on demand while storage stays proportional to the catalog, and answers
aggregate brightness queries over arbitrary sky boxes throughout.

Run:  python examples/star_catalog.py
"""

from __future__ import annotations

from repro.core.growth import GrowableCube
from repro.workloads import growth_stream


def main() -> None:
    catalog = GrowableCube(dims=3, initial_side=16)
    print("Star catalog cube: 3 dimensions (x, y, z), brightness as measure.\n")

    expansions = 0
    last_side = catalog.side
    checkpoints = {500, 1000, 2000, 4000}
    stars = 0

    for discovery in growth_stream(dims=3, points=4000, drift=3.0, seed=2000):
        catalog.add(discovery.coordinate, discovery.value)
        stars += 1
        if catalog.side != last_side:
            expansions += 1
            print(
                f"  after star {stars:>5}: domain doubled to side {catalog.side:>6} "
                f"(origin {catalog.origin}) to reach {discovery.coordinate}"
            )
            last_side = catalog.side
        if stars in checkpoints:
            low, high = catalog.bounds
            extent = tuple(hi - lo + 1 for lo, hi in zip(low, high))
            print(
                f"  checkpoint {stars:>5}: bounding box {extent}, "
                f"storage {catalog.memory_cells():>7,} cells, "
                f"total brightness {catalog.total():>7,}"
            )

    print(f"\nCatalog complete: {stars:,} discoveries, "
          f"{expansions} domain doublings, final side {catalog.side:,}.")
    domain_cells = catalog.side**3
    print(f"Domain holds {domain_cells:,} addressable cells; the catalog "
          f"stores only {catalog.memory_cells():,} "
          f"({100 * catalog.memory_cells() / domain_cells:.5f}% of the domain).\n")

    # -- Sky-box queries ---------------------------------------------------
    low, high = catalog.bounds
    print("Aggregate brightness queries:")
    print(f"  whole survey        : {catalog.range_sum(low, high):,}")
    centre = tuple((lo + hi) // 2 for lo, hi in zip(low, high))
    box = 50
    near_centre = catalog.range_sum(
        tuple(c - box for c in centre), tuple(c + box for c in centre)
    )
    print(f"  100^3 box at centre : {near_centre:,}")
    octant = catalog.range_sum(low, centre)
    print(f"  low octant          : {octant:,}")
    empty = catalog.range_sum(
        tuple(hi + 1000 for hi in high), tuple(hi + 1100 for hi in high)
    )
    print(f"  box beyond the data : {empty:,} (nothing there — and it cost nothing)")


if __name__ == "__main__":
    main()
