#!/usr/bin/env python3
"""A cube's operational life: ingest, persist, convert, go to disk.

Real deployments outlive any one process.  This example walks one cube
through the lifecycle a production system needs:

1. **bulk ingest** a quarter of transactions into a DDC;
2. **persist** it to a compact `.npz` (sparse: only populated blocks);
3. **reload and keep updating** — the structure picks up where it left;
4. **convert** to a read-optimised prefix-sum cube for a reporting
   freeze, then back when updates resume;
5. **move to the disk engine** (page file, bounded caches) and show
   physical page I/O per operation — the paper's "terabyte cube" regime.

Run:  python examples/cube_lifecycle.py
"""

from __future__ import annotations

import os
import tempfile

from repro.convert import convert
from repro.core.ddc import DynamicDataCube
from repro.persist import load_cube, save_cube
from repro.storage import DiskDynamicDataCube, PageFile
from repro.workloads import clustered, random_updates

SHAPE = (256, 256)


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        # -- 1. ingest ---------------------------------------------------
        data = clustered(SHAPE, clusters=5, points_per_cluster=300, seed=31)
        cube = DynamicDataCube.from_array(data)
        print(f"ingested quarter: total {cube.total():,}, "
              f"{cube.memory_cells():,} stored cells "
              f"({cube.memory_cells() / data.size:.2f}x the raw grid)\n")

        # -- 2. persist ----------------------------------------------------
        snapshot = os.path.join(tmp, "quarter.npz")
        save_cube(cube, snapshot)
        size_kb = os.path.getsize(snapshot) / 1024
        print(f"persisted to {os.path.basename(snapshot)}: {size_kb:,.0f} KiB "
              "(sparse: populated leaf blocks only)")

        # -- 3. reload and continue ------------------------------------------
        restored = load_cube(snapshot)
        for update in random_updates(SHAPE, 500, seed=32):
            restored.add(update.cell, update.delta)
        print(f"reloaded and absorbed 500 live updates; total {restored.total():,}\n")

        # -- 4. reporting freeze: convert to prefix sums ---------------------
        frozen = convert(restored, "ps")
        frozen.stats.reset()
        for low, high in [((0, 0), (127, 127)), ((10, 10), (200, 245))]:
            frozen.range_sum(low, high)
        print("reporting freeze on a PS conversion: "
              f"{frozen.stats.cell_reads} cells read for 2 region reports "
              "(constant-time queries)")
        thawed = convert(frozen, "ddc")
        assert thawed.total() == restored.total()
        print("converted back for the next update window "
              f"(totals agree: {thawed.total():,})\n")

        # -- 5. the disk engine ------------------------------------------------
        page_path = os.path.join(tmp, "cube.pf")
        with PageFile(page_path, page_size=512) as pages:
            disk = DiskDynamicDataCube(SHAPE, pages)
            for cell, value in restored.iter_nonzero():
                disk.add(cell, int(value))
            disk.flush()
            print(f"disk engine loaded: {pages.page_count:,} pages of 512B "
                  f"({pages.page_count * 512 / 1024:,.0f} KiB on disk)")
            pages.stats.reset()
            workload = random_updates(SHAPE, 100, seed=33)
            for update in workload:
                disk.add(update.cell, update.delta)
            disk.flush()
            io_per_update = (pages.stats.reads + pages.stats.writes) / len(workload)
            print(f"physical page I/O per interactive update: {io_per_update:.1f} "
                  f"(a disk prefix-sum array would rewrite up to "
                  f"{SHAPE[0] * SHAPE[1]:,} cells)")
            meta = disk.meta_page

        # reopen from disk, cold
        with PageFile(page_path, page_size=512) as pages:
            reopened = DiskDynamicDataCube(SHAPE, pages, meta_page=meta)
            assert reopened.total() == disk.total()
            print(f"reopened from disk; totals agree: {reopened.total():,}")


if __name__ == "__main__":
    main()
