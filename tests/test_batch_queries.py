"""Batch query engine: equivalence, shared-cost, and workload tests.

Every method's ``prefix_sum_many`` / ``range_sum_many`` / ``add_many``
must agree exactly with the scalar operations on every workload shape —
the batch engine is an optimization, never a semantic change.  On top of
equivalence, the path-sharing traversal must actually share: a clustered
batch on the Dynamic Data Cube performs strictly fewer ``node_visits``
than the same queries issued one at a time (the PR's acceptance
criterion).
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cli import main
from repro.core.bc_tree import BcTree
from repro.core.keyed_bc_tree import KeyedBcTree
from repro.exceptions import ConfigurationError
from repro.methods import build_method, method_class
from repro.workloads import RangeQuery, clustered, dense_uniform, query_stream
from repro.workloads import sparse_uniform

WORKLOADS = {
    "dense": lambda: dense_uniform((9, 7), seed=1),
    "sparse": lambda: sparse_uniform((16, 16), density=0.08, seed=2),
    "clustered": lambda: clustered((16, 16), clusters=3, points_per_cluster=30, seed=3),
}


def _query_cells(shape, count, seed):
    """Half uniform, half zipf-clustered targets, with duplicates."""
    cells = query_stream(shape, count // 2, locality="uniform", seed=seed)
    cells += query_stream(shape, count - count // 2, locality="zipf", seed=seed + 1)
    return cells + cells[: max(1, count // 8)]


# ----------------------------------------------------------------------
# Equivalence across every method and workload
# ----------------------------------------------------------------------


@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def test_prefix_sum_many_matches_scalar(method_name, workload):
    data = WORKLOADS[workload]()
    method = build_method(method_name, data)
    cells = _query_cells(data.shape, 40, seed=10)
    batch = method.prefix_sum_many(cells)
    scalar = [method.prefix_sum(cell) for cell in cells]
    assert [int(value) for value in batch] == [int(value) for value in scalar]


@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def test_range_sum_many_matches_scalar(method_name, workload):
    data = WORKLOADS[workload]()
    rng = np.random.default_rng(11)
    ranges = []
    for _ in range(20):
        low = tuple(int(rng.integers(0, size)) for size in data.shape)
        high = tuple(
            int(rng.integers(l, size)) for l, size in zip(low, data.shape)
        )
        ranges.append((low, high))
    method = build_method(method_name, data)
    expected = [int(method.range_sum(low, high)) for low, high in ranges]
    # Plain (low, high) pairs and RangeQuery objects both work.
    assert [int(v) for v in method.range_sum_many(ranges)] == expected
    queries = [RangeQuery(low, high) for low, high in ranges]
    assert [int(v) for v in method.range_sum_many(queries)] == expected
    assert method.range_sum_many([]) == []


@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def test_add_many_matches_scalar(method_name, workload):
    data = WORKLOADS[workload]()
    rng = np.random.default_rng(12)
    updates = [
        (
            tuple(int(rng.integers(0, size)) for size in data.shape),
            int(rng.integers(-5, 6)),
        )
        for _ in range(30)
    ]
    # Duplicates and a zero-sum pair exercise the combining contract.
    updates += [updates[0], (updates[1][0], -updates[1][1])]
    batched = build_method(method_name, data)
    sequential = build_method(method_name, data)
    batched.add_many(updates)
    for cell, delta in updates:
        sequential.add(cell, delta)
    assert np.array_equal(batched.to_dense(), sequential.to_dense())
    assert int(batched.total()) == int(sequential.total())
    if hasattr(batched, "validate"):
        batched.validate()


@pytest.mark.parametrize("shape", [(13,), (8, 8, 8)])
def test_batch_queries_other_dimensionalities(method_name, shape):
    rng = np.random.default_rng(13)
    data = rng.integers(-4, 5, size=shape).astype(np.int64)
    method = build_method(method_name, data)
    cells = _query_cells(shape, 24, seed=14)
    batch = method.prefix_sum_many(cells)
    scalar = [method.prefix_sum(cell) for cell in cells]
    assert [int(value) for value in batch] == [int(value) for value in scalar]


def test_empty_batches(method_name):
    method = build_method(method_name, WORKLOADS["dense"]())
    assert method.prefix_sum_many([]) == []
    assert method.range_sum_many([]) == []
    before = method.to_dense()
    method.add_many([])
    assert np.array_equal(method.to_dense(), before)


# ----------------------------------------------------------------------
# Path sharing: the acceptance criterion
# ----------------------------------------------------------------------


def test_ddc_clustered_batch_shares_node_visits():
    """256 clustered queries on a 256x256 cube: batch visits < scalar."""
    data = clustered((256, 256), clusters=4, points_per_cluster=100, seed=20)
    method = build_method("ddc", data)
    cells = query_stream((256, 256), 256, locality="zipf", seed=21)
    method.stats.reset()
    batch = method.prefix_sum_many(cells)
    batch_visits = method.stats.node_visits
    method.stats.reset()
    scalar = [method.prefix_sum(cell) for cell in cells]
    scalar_visits = method.stats.node_visits
    assert [int(v) for v in batch] == [int(v) for v in scalar]
    assert batch_visits < scalar_visits


def test_basic_ddc_batch_never_visits_more():
    data = clustered((64, 64), clusters=3, points_per_cluster=60, seed=22)
    method = build_method("basic-ddc", data)
    cells = query_stream((64, 64), 64, locality="zipf", seed=23)
    method.stats.reset()
    method.prefix_sum_many(cells)
    batch_visits = method.stats.node_visits
    method.stats.reset()
    for cell in cells:
        method.prefix_sum(cell)
    assert batch_visits <= method.stats.node_visits


def test_ddc_add_many_zero_batch_allocates_nothing():
    method = method_class("ddc")((8, 8))
    method.add_many([((2, 2), 5), ((2, 2), -5)])
    assert method.memory_cells() == 0
    method.add_many([])
    assert method.memory_cells() == 0


# ----------------------------------------------------------------------
# Secondary structures: shared descents and bulk upserts
# ----------------------------------------------------------------------


def test_bc_tree_batch_ops():
    rng = np.random.default_rng(30)
    values = [int(rng.integers(-9, 10)) for _ in range(200)]
    tree = BcTree.from_values(values, fanout=4)
    indices = [int(rng.integers(0, 200)) for _ in range(40)]
    indices += indices[:5]
    assert tree.prefix_sum_many(indices) == [tree.prefix_sum(i) for i in indices]
    tree.stats.reset()
    tree.prefix_sum_many(indices)
    batch_visits = tree.stats.node_visits
    tree.stats.reset()
    for index in indices:
        tree.prefix_sum(index)
    assert batch_visits < tree.stats.node_visits
    updates = [(int(rng.integers(0, 200)), int(rng.integers(-5, 6))) for _ in range(30)]
    expected = list(values)
    for index, delta in updates:
        expected[index] += delta
    tree.add_many(updates)
    tree.validate()
    assert tree.to_list() == expected


def test_keyed_bc_tree_batch_ops():
    rng = np.random.default_rng(31)
    keys = sorted(rng.choice(1000, size=150, replace=False).tolist())
    pairs = [(int(key), int(rng.integers(-9, 10))) for key in keys]
    tree = KeyedBcTree.from_items(pairs, fanout=4)
    probes = [int(rng.integers(0, 1100)) for _ in range(50)] + [keys[0], keys[-1]]
    assert tree.prefix_sum_many(probes) == [tree.prefix_sum(k) for k in probes]
    # Bulk upsert with mostly-new keys forces multi-way splits and
    # possibly several levels of root growth.
    upserts = [(int(rng.integers(0, 5000)), int(rng.integers(-5, 6))) for _ in range(300)]
    reference = dict(pairs)
    for key, delta in upserts:
        reference[key] = reference.get(key, 0) + delta
    tree.add_many(upserts)
    tree.validate()
    stored = dict(tree.items())
    assert {k: v for k, v in stored.items() if v != 0} == {
        k: v for k, v in reference.items() if v != 0
    }
    assert tree.prefix_sum_many(probes) == [tree.prefix_sum(k) for k in probes]


def test_keyed_bc_tree_add_many_from_empty():
    tree = KeyedBcTree(fanout=4)
    tree.add_many([(5, 3), (1, 2), (5, 1), (9, 0)])
    tree.validate()
    assert dict(tree.items()) == {1: 2, 5: 4}
    assert tree.prefix_sum_many([0, 1, 5, 100]) == [0, 2, 6, 6]
    tree.add_many([(key, 1) for key in range(100)])
    tree.validate()
    assert tree.total() == 106


# ----------------------------------------------------------------------
# query_stream workload generator
# ----------------------------------------------------------------------


def test_query_stream_deterministic_and_bounded():
    for locality in ("uniform", "zipf"):
        first = query_stream((32, 48), 50, locality=locality, seed=7)
        second = query_stream((32, 48), 50, locality=locality, seed=7)
        assert first == second
        assert len(first) == 50
        for cell in first:
            assert 0 <= cell[0] < 32 and 0 <= cell[1] < 48
    assert query_stream((16,), 0) == []


def test_query_stream_zipf_is_clustered():
    zipf = query_stream((256, 256), 200, locality="zipf", clusters=3, seed=8)
    uniform = query_stream((256, 256), 200, locality="uniform", seed=8)
    blocks = lambda cells: {(x // 32, y // 32) for x, y in cells}  # noqa: E731
    # The zipf stream concentrates in a few 32x32 blocks around its
    # cluster centres; the uniform stream scatters over most of the 64.
    assert len(blocks(zipf)) < len(blocks(uniform)) / 2


def test_query_stream_rejects_unknown_locality():
    with pytest.raises(ConfigurationError):
        query_stream((8, 8), 4, locality="bogus")


# ----------------------------------------------------------------------
# CLI artifact
# ----------------------------------------------------------------------


def test_cli_bench_batch_writes_json(tmp_path, capsys):
    artifact = tmp_path / "bench.json"
    for method in ("ddc", "ps"):
        code = main(
            [
                "bench-batch",
                "--method",
                method,
                "--shape",
                "32",
                "32",
                "--batch",
                "16",
                "--json",
                str(artifact),
            ]
        )
        assert code == 0
    out = capsys.readouterr().out
    assert "speedup" in out
    document = json.loads(artifact.read_text())
    assert document["experiment"] == "batch_queries"
    methods = {row["method"] for row in document["rows"]}
    assert methods == {"ddc", "ps"}
    for row in document["rows"]:
        assert row["batch"] == 16
        assert row["node_visits_batch"] >= 0
        assert row["queries_per_second"] is None or row["queries_per_second"] > 0
    # Re-running the same configuration replaces the row, not appends.
    assert main(
        [
            "bench-batch",
            "--method",
            "ddc",
            "--shape",
            "32",
            "32",
            "--batch",
            "16",
            "--json",
            str(artifact),
        ]
    ) == 0
    document = json.loads(artifact.read_text())
    assert len(document["rows"]) == 2


# ----------------------------------------------------------------------
# REP006 lint rule
# ----------------------------------------------------------------------

_SCALAR_LOOP = '''__all__ = ["X"]
class X:
    def prefix_sum(self, cell):
        self.stats.cell_reads += 1
        return 0
    def prefix_sum_many(self, cells):
        self.stats.cell_reads += 1
        return [self.prefix_sum(c) for c in cells]
'''


def test_lint_rep006_flags_scalar_loop_in_core():
    from repro.analysis.lint import lint_source

    findings = lint_source(_SCALAR_LOOP, "src/repro/core/fixture.py")
    assert any(f.rule == "REP006" for f in findings)
    findings = lint_source(_SCALAR_LOOP, "src/repro/methods/fixture.py")
    assert any(f.rule == "REP006" for f in findings)


def test_lint_rep006_exemptions():
    from repro.analysis.lint import lint_source

    # The base-class defaults are the sanctioned fallback.
    assert not any(
        f.rule == "REP006"
        for f in lint_source(_SCALAR_LOOP, "src/repro/methods/base.py")
    )
    # Code outside core/methods is out of scope.
    assert not any(
        f.rule == "REP006"
        for f in lint_source(_SCALAR_LOOP, "src/repro/olap/fixture.py")
    )
    # An explanatory noqa suppresses adaptive crossovers.
    suppressed = _SCALAR_LOOP.replace(
        "for c in cells]", "for c in cells]  # noqa: REP006"
    )
    assert not any(
        f.rule == "REP006"
        for f in lint_source(suppressed, "src/repro/core/fixture.py")
    )


def test_library_sources_pass_rep006():
    import pathlib

    from repro import methods

    from repro.analysis.lint import lint_paths

    src = pathlib.Path(methods.__file__).parent.parent
    findings = [f for f in lint_paths([src]) if f.rule == "REP006"]
    assert findings == []
