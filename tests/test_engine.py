"""Tests for the sharded parallel execution engine.

The load-bearing property: a K-sharded engine — any K, including counts
that leave an uneven last shard — is cell-for-cell indistinguishable
from the unsharded structure it wraps, under any interleaving of
queries and updates, with or without the result cache and the thread
pool in the loop.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import (
    EpochLruCache,
    MISS,
    SerialExecutor,
    ShardedEngine,
    ShardPlan,
    ThreadedExecutor,
    make_executor,
)
from repro.exceptions import ConfigurationError
from repro.methods import build_method
from repro.workloads import (
    PointUpdate,
    RangeQuery,
    clustered,
    read_write_stream,
)


class TestShardPlan:
    def test_even_split(self):
        plan = ShardPlan((8, 5), shards=4)
        assert len(plan) == 4
        assert [(s.start, s.stop) for s in plan.spans] == [
            (0, 2),
            (2, 4),
            (4, 6),
            (6, 8),
        ]

    def test_uneven_last_shard(self):
        plan = ShardPlan((10, 3), shards=4)
        lengths = [span.length for span in plan.spans]
        assert sum(lengths) == 10
        assert all(length >= 1 for length in lengths)
        # floor(i*n/K) boundaries: spans differ by at most one row.
        assert max(lengths) - min(lengths) <= 1

    def test_owner_routing(self):
        plan = ShardPlan((10, 3), shards=3)
        for row in range(10):
            index = plan.owner((row, 0))
            span = plan.spans[index]
            assert span.start <= row < span.stop

    def test_decompose_covers_range_exactly(self):
        plan = ShardPlan((10, 4), shards=3)
        parts = list(plan.decompose((1, 0), (8, 3)))
        # Local sub-ranges translate back to a disjoint cover of [1, 8].
        covered = []
        for index, local_low, local_high in parts:
            span = plan.spans[index]
            covered.extend(
                range(span.start + local_low[0], span.start + local_high[0] + 1)
            )
            assert local_low[1:] == (0,)
            assert local_high[1:] == (3,)
        assert covered == list(range(1, 9))

    def test_decompose_single_shard_range(self):
        plan = ShardPlan((12, 2), shards=4)
        parts = list(plan.decompose((0, 0), (1, 1)))
        assert len(parts) == 1
        assert parts[0][0] == 0

    def test_invalid_shard_counts(self):
        with pytest.raises(ConfigurationError):
            ShardPlan((8, 8), shards=0)
        with pytest.raises(ConfigurationError):
            ShardPlan((4, 4), shards=5)


class TestEpochLruCache:
    def test_hit_and_stale_invalidation(self):
        cache = EpochLruCache(4)
        epochs = [0, 0]
        cache.put("a", 7, (0,), epochs)
        assert cache.get("a", epochs) == 7
        epochs[0] += 1  # a write to shard 0 invalidates the entry
        assert cache.get("a", epochs) is MISS
        assert "a" not in cache
        assert cache.invalidations == 1

    def test_independent_shard_write_keeps_entry(self):
        cache = EpochLruCache(4)
        epochs = [0, 0]
        cache.put("a", 7, (0,), epochs)
        epochs[1] += 1  # other shard: entry must stay warm
        assert cache.get("a", epochs) == 7

    def test_lru_eviction(self):
        cache = EpochLruCache(2)
        epochs = [0]
        cache.put("a", 1, (0,), epochs)
        cache.put("b", 2, (0,), epochs)
        assert cache.get("a", epochs) == 1  # refresh a
        cache.put("c", 3, (0,), epochs)  # evicts b
        assert cache.get("b", epochs) is MISS
        assert cache.get("a", epochs) == 1
        assert cache.evictions == 1

    def test_zero_capacity_disables(self):
        cache = EpochLruCache(0)
        cache.put("a", 1, (0,), [0])
        assert cache.get("a", [0]) is MISS
        assert len(cache) == 0

    def test_get_refreshes_recency_order(self):
        cache = EpochLruCache(3)
        epochs = [0]
        for key, value in (("a", 1), ("b", 2), ("c", 3)):
            cache.put(key, value, (0,), epochs)
        # touch the oldest two so "c" becomes the LRU victim
        assert cache.get("a", epochs) == 1
        assert cache.get("b", epochs) == 2
        cache.put("d", 4, (0,), epochs)
        assert cache.get("c", epochs) is MISS
        assert cache.get("a", epochs) == 1
        assert cache.get("b", epochs) == 2
        assert cache.get("d", epochs) == 4

    def test_contains_does_not_perturb_recency(self):
        cache = EpochLruCache(2)
        epochs = [0]
        cache.put("a", 1, (0,), epochs)
        cache.put("b", 2, (0,), epochs)
        # membership probes must not refresh "a" — it stays the LRU victim
        assert "a" in cache
        assert "a" in cache
        cache.put("c", 3, (0,), epochs)
        assert cache.get("a", epochs) is MISS
        assert cache.get("b", epochs) == 2

    def test_stale_entries_evicted_before_live_ones(self):
        cache = EpochLruCache(2)
        epochs = [0, 0]
        cache.put("live", 1, (0,), epochs)     # depends on shard 0
        cache.put("stale", 2, (1,), epochs)    # depends on shard 1
        epochs[1] += 1                         # "stale" is now invalid
        # at capacity: the eviction scan must pick the stale entry even
        # though "live" is older in LRU order
        cache.put("new", 3, (0,), epochs)
        assert cache.get("live", epochs) == 1
        assert cache.get("new", epochs) == 3
        assert cache.get("stale", epochs) is MISS
        assert cache.stale_evictions == 1
        assert cache.evictions == 1

    def test_plain_lru_eviction_when_nothing_is_stale(self):
        cache = EpochLruCache(2)
        epochs = [0]
        cache.put("a", 1, (0,), epochs)
        cache.put("b", 2, (0,), epochs)
        cache.put("c", 3, (0,), epochs)
        assert cache.get("a", epochs) is MISS
        assert cache.stale_evictions == 0
        assert cache.evictions == 1


class TestExecutors:
    def test_make_executor_selects(self):
        assert isinstance(make_executor(None), SerialExecutor)
        assert isinstance(make_executor(0), SerialExecutor)
        assert isinstance(make_executor(1), SerialExecutor)
        pooled = make_executor(3)
        assert isinstance(pooled, ThreadedExecutor)
        assert pooled.workers == 3
        pooled.shutdown()

    def test_threaded_requires_at_least_two(self):
        with pytest.raises(ConfigurationError):
            ThreadedExecutor(1)

    def test_map_matches_builtin(self):
        serial = SerialExecutor()
        pooled = ThreadedExecutor(2)
        try:
            items = list(range(10))
            assert serial.map(lambda x: x * x, items) == [x * x for x in items]
            assert pooled.map(lambda x: x * x, items) == [x * x for x in items]
        finally:
            pooled.shutdown()


def _replay(target, events):
    reads = []
    for event in events:
        if isinstance(event, RangeQuery):
            reads.append(int(target.range_sum(event.low, event.high)))
        else:
            target.add(event.cell, event.delta)
    return reads


class TestEngineEquivalence:
    SHAPE = (18, 9)

    @pytest.mark.parametrize("shards", [1, 2, 4, 7])
    def test_interleaved_stream_matches_unsharded(self, shards):
        """K-sharded == unsharded under mixed queries/updates (K=7 leaves
        an uneven last shard on an 18-row cube)."""
        data = clustered(self.SHAPE, seed=11)
        events = read_write_stream(
            self.SHAPE, 160, mix=0.7, locality="zipf", seed=12
        )
        baseline = build_method("ddc", data)
        with ShardedEngine.from_array(data, shards=shards) as engine:
            assert _replay(engine, events) == _replay(baseline, events)
            assert np.array_equal(engine.to_dense(), baseline.to_dense())

    @pytest.mark.parametrize("method", ["naive", "fenwick", "basic-ddc"])
    def test_any_registered_method_as_shard(self, method):
        data = clustered(self.SHAPE, seed=13)
        events = read_write_stream(
            self.SHAPE, 80, mix=0.6, locality="uniform", seed=14
        )
        baseline = build_method(method, data)
        with ShardedEngine.from_array(data, shards=3, method=method) as engine:
            assert _replay(engine, events) == _replay(baseline, events)

    def test_thread_pool_matches_sequential(self):
        data = clustered(self.SHAPE, seed=15)
        events = read_write_stream(
            self.SHAPE, 120, mix=0.8, locality="zipf", seed=16
        )
        with ShardedEngine.from_array(data, shards=4) as serial:
            expected = _replay(serial, events)
        with ShardedEngine.from_array(data, shards=4, workers=2) as pooled:
            assert _replay(pooled, events) == expected

    def test_batch_api_matches_scalar(self):
        data = clustered(self.SHAPE, seed=17)
        queries = [((1, 0), (16, 8)), ((0, 0), (3, 3)), ((5, 2), (17, 7))]
        cells = [(4, 4), (17, 8), (0, 0)]
        baseline = build_method("ddc", data)
        with ShardedEngine.from_array(data, shards=4) as engine:
            assert [int(v) for v in engine.range_sum_many(queries)] == [
                int(v) for v in baseline.range_sum_many(queries)
            ]
            assert [int(v) for v in engine.prefix_sum_many(cells)] == [
                int(v) for v in baseline.prefix_sum_many(cells)
            ]
            updates = [((2, 2), 5), ((9, 1), -3), ((17, 8), 11), ((2, 2), 1)]
            engine.add_many(updates)
            baseline.add_many(updates)
            assert np.array_equal(engine.to_dense(), baseline.to_dense())


class TestEngineCache:
    SHAPE = (16, 8)

    def test_query_update_query_reflects_write(self):
        """The acceptance sequence: cached query -> overlapping write ->
        re-query must see the new value, never the stale cache entry."""
        data = clustered(self.SHAPE, seed=21)
        with ShardedEngine.from_array(data, shards=4) as engine:
            low, high = (2, 1), (13, 6)
            first = int(engine.range_sum(low, high))
            assert int(engine.range_sum(low, high)) == first  # cache hit
            assert engine.stats.cache_hits == 1
            engine.add((5, 3), 42)  # bumps the owning shard's epoch
            assert int(engine.range_sum(low, high)) == first + 42
            assert engine.cache_info()["invalidations"] >= 1

    def test_write_to_other_shard_keeps_entry_warm(self):
        data = clustered(self.SHAPE, seed=22)
        with ShardedEngine.from_array(data, shards=4) as engine:
            # Range entirely inside shard 0 (rows 0..3).
            value = int(engine.range_sum((0, 0), (3, 7)))
            engine.add((15, 0), 9)  # last shard; shard 0's epoch untouched
            hits_before = engine.stats.cache_hits
            assert int(engine.range_sum((0, 0), (3, 7))) == value
            assert engine.stats.cache_hits == hits_before + 1

    def test_counters_and_hit_rate(self):
        data = clustered(self.SHAPE, seed=23)
        with ShardedEngine.from_array(data, shards=2) as engine:
            engine.reset_stats()
            engine.range_sum((0, 0), (15, 7))
            engine.range_sum((0, 0), (15, 7))
            engine.range_sum((1, 1), (2, 2))
            assert engine.stats.cache_misses == 2
            assert engine.stats.cache_hits == 1
            assert engine.stats.cache_hit_rate == pytest.approx(1 / 3)
            info = engine.cache_info()
            assert info["hits"] == 1 and info["misses"] == 2
            assert info["size"] == 2
            assert info["stale_evictions"] == 0

    def test_cache_disabled_still_correct(self):
        data = clustered(self.SHAPE, seed=24)
        baseline = build_method("ddc", data)
        with ShardedEngine.from_array(data, shards=3, cache_size=0) as engine:
            events = read_write_stream(
                self.SHAPE, 60, mix=0.8, locality="zipf", seed=25
            )
            assert _replay(engine, events) == _replay(baseline, events)
            assert engine.stats.cache_hits == 0

    def test_clear_cache(self):
        data = clustered(self.SHAPE, seed=26)
        with ShardedEngine.from_array(data, shards=2) as engine:
            engine.range_sum((0, 0), (7, 7))
            assert engine.cache_info()["size"] == 1
            engine.clear_cache()
            assert engine.cache_info()["size"] == 0


class TestEngineIntrospection:
    def test_shard_report_and_aggregate_stats(self):
        data = clustered((12, 6), seed=31)
        with ShardedEngine.from_array(data, shards=3) as engine:
            engine.reset_stats()
            engine.range_sum((0, 0), (11, 5))
            report = engine.shard_report()
            assert len(report) == 3
            assert all(row["span"][1] > row["span"][0] for row in report)
            merged = engine.aggregate_stats()
            assert merged.cache_misses == 1
            before = list(engine.epochs)
            engine.add((0, 0), 1)
            after = list(engine.epochs)
            # Only the owning shard's epoch moves, and by exactly one.
            assert after[0] == before[0] + 1
            assert after[1:] == before[1:]

    def test_invalid_configuration(self):
        with pytest.raises(ConfigurationError):
            ShardedEngine((8, 8), shards=0)
        with pytest.raises(ConfigurationError):
            ShardedEngine((4, 4), shards=9)

    def test_total_and_memory(self):
        data = clustered((10, 5), seed=32)
        baseline = build_method("ddc", data)
        with ShardedEngine.from_array(data, shards=4) as engine:
            assert int(engine.total()) == int(baseline.total())
            assert engine.memory_cells() > 0
