"""Tests for the operation-counting substrate."""

from __future__ import annotations

from repro.counters import CostSample, MeasurementSession, OpCounter


class TestOpCounter:
    def test_starts_at_zero(self):
        counter = OpCounter()
        assert counter.cell_reads == 0
        assert counter.cell_writes == 0
        assert counter.node_visits == 0
        assert counter.total_cell_ops == 0

    def test_total_cell_ops(self):
        counter = OpCounter(cell_reads=3, cell_writes=5)
        assert counter.total_cell_ops == 8

    def test_reset(self):
        counter = OpCounter(1, 2, 3)
        counter.reset()
        assert counter.total_cell_ops == 0
        assert counter.node_visits == 0

    def test_snapshot_is_independent(self):
        counter = OpCounter(1, 1, 1)
        snap = counter.snapshot()
        counter.cell_reads += 10
        assert snap.cell_reads == 1

    def test_diff(self):
        counter = OpCounter(5, 7, 2)
        earlier = OpCounter(1, 2, 1)
        delta = counter.diff(earlier)
        assert (delta.cell_reads, delta.cell_writes, delta.node_visits) == (4, 5, 1)

    def test_merge(self):
        counter = OpCounter(1, 1, 1)
        counter.merge(OpCounter(2, 3, 4))
        assert (counter.cell_reads, counter.cell_writes, counter.node_visits) == (
            3,
            4,
            5,
        )

    def test_snapshot_and_diff_drop_the_tracker(self):
        # Contract (see OpCounter.snapshot/diff): copies are tallies
        # only.  A snapshot that kept the tracker would double-report
        # page accesses to the buffer pool if reporting code ever called
        # touch() on it.
        class Recorder:
            def __init__(self):
                self.seen = []

            def access(self, obj):
                self.seen.append(obj)

        tracker = Recorder()
        counter = OpCounter(5, 2, 3)
        counter.tracker = tracker

        snap = counter.snapshot()
        assert snap.tracker is None
        assert (snap.cell_reads, snap.cell_writes, snap.node_visits) == (5, 2, 3)

        delta = counter.diff(OpCounter(1, 1, 1))
        assert delta.tracker is None
        assert (delta.cell_reads, delta.cell_writes, delta.node_visits) == (
            4,
            1,
            2,
        )

        # A stray touch() on either copy must be a silent no-op...
        snap.touch("node")
        delta.touch("node")
        assert tracker.seen == []
        # ...while the live counter still reports.
        counter.touch("node")
        assert tracker.seen == ["node"]


class TestMeasurementSession:
    def test_record_and_filter(self):
        session = MeasurementSession("demo")
        session.record(CostSample("ddc", 64, 2, "update", 12.0))
        session.record(CostSample("ps", 64, 2, "query", 4.0))
        assert len(session.rows_for("update")) == 1
        assert session.rows_for("query")[0].method == "ps"

    def test_render_contains_all_rows(self):
        session = MeasurementSession("demo")
        session.record(CostSample("ddc", 64, 2, "update", 12.5, seconds=0.001))
        text = session.render()
        assert "demo" in text
        assert "ddc" in text
        assert "12.5" in text

    def test_sample_row_shape(self):
        sample = CostSample("rps", 128, 3, "query", 9.0, seconds=0.5, samples=10)
        assert sample.as_row() == ("rps", 128, 3, "query", 9.0, 0.5, 10)
