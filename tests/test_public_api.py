"""API-surface stability: the documented entry points exist and import."""

from __future__ import annotations

import importlib

import pytest


def test_top_level_exports():
    import repro

    for name in repro.__all__:
        assert hasattr(repro, name), name
    assert repro.__version__


@pytest.mark.parametrize(
    "module,names",
    [
        ("repro.core", ["BcTree", "DynamicDataCube", "BasicDynamicDataCube", "GrowableCube"]),
        ("repro.core.keyed_bc_tree", ["KeyedBcTree"]),
        (
            "repro.methods",
            [
                "RangeSumMethod",
                "NaiveArray",
                "PrefixSumCube",
                "RelativePrefixSumCube",
                "FenwickCube",
                "SegmentTreeCube",
                "create_method",
                "build_method",
            ],
        ),
        (
            "repro.olap",
            [
                "CubeSchema",
                "DataCube",
                "IntegerDimension",
                "CategoricalDimension",
                "BinnedDimension",
                "DateDimension",
                "HierarchyDimension",
                "BivariateCube",
            ],
        ),
        (
            "repro.model",
            ["table1", "table2", "figure1_series", "update_cost", "classify_growth"],
        ),
        (
            "repro.storage",
            ["BufferPool", "attach_pool", "PageFile", "DiskBcTree", "DiskDynamicDataCube"],
        ),
        ("repro.persist", ["save_cube", "load_cube", "PersistError"]),
        ("repro.olap_persist", ["save_datacube", "load_datacube"]),
        ("repro.convert", ["convert", "rebuild"]),
        ("repro.advisor", ["WorkloadProfile", "recommend"]),
        ("repro.workloads", ["dense_uniform", "clustered", "growth_stream", "random_ranges", "straddling_ranges"]),
        (
            "repro.engine",
            [
                "ShardedEngine",
                "ShardPlan",
                "SerialExecutor",
                "ThreadedExecutor",
                "ResiliencePolicy",
                "CircuitBreaker",
                "FaultInjector",
                "FaultScript",
                "PartialResult",
                "is_partial",
            ],
        ),
        (
            "repro.obs",
            [
                "Observability",
                "NULL_OBS",
                "MetricsRegistry",
                "Tracer",
                "SlowQueryLog",
                "ManualClock",
                "render_span_tree",
                "sorted_by_duration",
            ],
        ),
        (
            "repro.serve",
            [
                "AdmissionPolicy",
                "ConcurrencyGate",
                "CubeServer",
                "QueryRequest",
                "ServeClient",
                "ServeResponse",
                "SingleFlight",
                "TenantBuckets",
                "TokenBucket",
                "UpdateRequest",
                "available_codecs",
                "codec_for",
                "default_codec",
            ],
        ),
        ("repro.artifacts", ["make_document", "load_document", "write_document", "upsert_row"]),
        ("repro.cli", ["main", "build_parser"]),
    ],
)
def test_documented_module_surface(module, names):
    imported = importlib.import_module(module)
    for name in names:
        assert hasattr(imported, name), f"{module}.{name}"


def test_all_lists_are_importable():
    for module in ("repro", "repro.core", "repro.methods", "repro.olap", "repro.storage", "repro.model", "repro.workloads", "repro.obs", "repro.artifacts", "repro.engine", "repro.serve"):
        imported = importlib.import_module(module)
        exported = getattr(imported, "__all__", [])
        for name in exported:
            assert hasattr(imported, name), f"{module}.{name} in __all__ but missing"
