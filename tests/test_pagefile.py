"""Tests for the page file and the disk-resident B^c tree."""

from __future__ import annotations

import random

import pytest

from repro.exceptions import StructureError
from repro.storage import DiskBcTree, PageFile, PageFileError


@pytest.fixture
def page_path(tmp_path):
    return tmp_path / "data.pf"


class TestPageFile:
    def test_create_and_reopen(self, page_path):
        with PageFile(page_path, page_size=128) as pages:
            page = pages.allocate()
            pages.write(page, b"hello")
        with PageFile(page_path, page_size=128) as pages:
            assert pages.read(page) == b"hello"
            assert pages.page_size == 128

    def test_page_size_validated_on_reopen(self, page_path):
        PageFile(page_path, page_size=128).close()
        with pytest.raises(PageFileError):
            PageFile(page_path, page_size=256)

    def test_minimum_page_size(self, page_path):
        with pytest.raises(PageFileError):
            PageFile(page_path, page_size=16)

    def test_not_a_page_file(self, tmp_path):
        path = tmp_path / "junk"
        path.write_bytes(b"x" * 200)
        with pytest.raises(PageFileError):
            PageFile(path, page_size=128)

    def test_payload_too_large(self, page_path):
        with PageFile(page_path, page_size=64) as pages:
            page = pages.allocate()
            with pytest.raises(PageFileError):
                pages.write(page, b"y" * 64)

    def test_out_of_range_page(self, page_path):
        with PageFile(page_path, page_size=64) as pages:
            with pytest.raises(PageFileError):
                pages.read(3)

    def test_free_list_recycling(self, page_path):
        with PageFile(page_path, page_size=64) as pages:
            first = pages.allocate()
            second = pages.allocate()
            pages.free(first)
            recycled = pages.allocate()
            assert recycled == first
            assert pages.page_count == 2
            assert second != recycled

    def test_stats_track_traffic(self, page_path):
        with PageFile(page_path, page_size=64) as pages:
            page = pages.allocate()
            pages.write(page, b"a")
            pages.read(page)
            pages.read(page)
            assert pages.stats.writes == 1
            assert pages.stats.reads == 2
            assert pages.stats.allocations == 1

    def test_many_pages_round_trip(self, page_path):
        with PageFile(page_path, page_size=64) as pages:
            payloads = {}
            for index in range(50):
                page = pages.allocate()
                payload = bytes([index]) * (index % 40)
                pages.write(page, payload)
                payloads[page] = payload
            for page, payload in payloads.items():
                assert pages.read(page) == payload


class TestDiskBcTree:
    def test_empty_tree(self, page_path):
        with PageFile(page_path, page_size=256) as pages:
            tree = DiskBcTree(pages)
            assert len(tree) == 0
            assert tree.total() == 0
            assert tree.prefix_sum(10**9) == 0
            assert tree.get(5) == 0

    def test_matches_dict_reference(self, page_path):
        rng = random.Random(1)
        reference: dict[int, int] = {}
        with PageFile(page_path, page_size=256) as pages:
            tree = DiskBcTree(pages, cache_pages=4)
            for _ in range(400):
                key = rng.randrange(-300, 300)
                delta = rng.randrange(-9, 10) or 1
                tree.add(key, delta)
                reference[key] = reference.get(key, 0) + delta
            tree.validate()
            assert tree.total() == sum(reference.values())
            for probe in range(-330, 331, 41):
                expected = sum(v for k, v in reference.items() if k <= probe)
                assert tree.prefix_sum(probe) == expected
            for key in list(reference)[:10]:
                assert tree.get(key) == reference[key]

    def test_persistence_across_reopen(self, page_path):
        with PageFile(page_path, page_size=256) as pages:
            tree = DiskBcTree(pages, cache_pages=2)
            for key in range(100):
                tree.add(key * 3, key)
            meta = tree.meta_page
            tree.flush()
        with PageFile(page_path, page_size=256) as pages:
            tree = DiskBcTree(pages, meta_page=meta)
            assert len(tree) == 99  # key 0 had delta 0: skipped
            assert tree.total() == sum(range(100))
            assert tree.prefix_sum(3 * 50) == sum(range(51))
            tree.validate()

    def test_float_values(self, page_path):
        with PageFile(page_path, page_size=256) as pages:
            tree = DiskBcTree(pages, value_format="d")
            tree.add(1, 0.5)
            tree.add(2, 0.25)
            assert tree.prefix_sum(2) == pytest.approx(0.75)

    def test_bad_value_format(self, page_path):
        with PageFile(page_path, page_size=256) as pages:
            with pytest.raises(ValueError):
                DiskBcTree(pages, value_format="x")

    def test_tiny_page_rejected(self, page_path):
        with PageFile(page_path, page_size=64) as pages:
            with pytest.raises(PageFileError):
                DiskBcTree(pages)

    def test_cache_size_one_still_correct(self, page_path):
        with PageFile(page_path, page_size=256) as pages:
            tree = DiskBcTree(pages, cache_pages=1)
            for key in range(200):
                tree.add(key, 1)
            assert tree.prefix_sum(99) == 100
            tree.validate()

    def test_bigger_cache_means_fewer_physical_reads(self, page_path):
        rng = random.Random(2)
        keys = [rng.randrange(0, 5000) for _ in range(800)]
        reads = {}
        for cache_pages in (1, 64):
            path = page_path.parent / f"cache{cache_pages}.pf"
            with PageFile(path, page_size=256) as pages:
                tree = DiskBcTree(pages, cache_pages=cache_pages)
                for key in keys:
                    tree.add(key, 1)
                pages.stats.reset()
                for probe in range(0, 5000, 37):
                    tree.prefix_sum(probe)
                reads[cache_pages] = pages.stats.reads
        assert reads[64] < reads[1] / 2

    def test_set_semantics(self, page_path):
        with PageFile(page_path, page_size=256) as pages:
            tree = DiskBcTree(pages)
            tree.set(7, 10)
            tree.set(7, 4)
            assert tree.get(7) == 4
            assert tree.total() == 4

    def test_items_in_order(self, page_path):
        with PageFile(page_path, page_size=256) as pages:
            tree = DiskBcTree(pages)
            for key in (30, 10, 20, -5):
                tree.add(key, key)
            assert [k for k, _ in tree.items()] == [-5, 10, 20, 30]

    def test_validate_detects_corruption(self, page_path):
        with PageFile(page_path, page_size=256) as pages:
            tree = DiskBcTree(pages, cache_pages=4)
            for key in range(300):
                tree.add(key, 1)
            tree.flush()
            # Corrupt the root's first subtree sum on disk.
            root = tree._load(tree._root_page)
            assert not root.leaf
            root.sums[0] += 1
            tree._mark_dirty(root)
            with pytest.raises(StructureError):
                tree.validate()


class TestDefaultPageSize:
    def test_none_accepts_any_stored_size(self, page_path):
        PageFile(page_path, page_size=128).close()
        with PageFile(page_path) as pages:  # no size requested
            assert pages.page_size == 128

    def test_default_creation_size(self, tmp_path):
        with PageFile(tmp_path / "d.pf") as pages:
            assert pages.page_size == PageFile.DEFAULT_PAGE_SIZE
