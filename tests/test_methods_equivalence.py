"""Cross-method equivalence: every structure answers every query identically.

This is the load-bearing correctness suite: the naive array is the
oracle, and each method must agree with it over random build / update /
query lifecycles in one, two, and three dimensions.  Hypothesis drives
the shapes, contents, and operation sequences.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.methods import NaiveArray, method_class

CHALLENGERS = ["ps", "rps", "fenwick", "segtree", "basic-ddc", "ddc", "vector"]


@st.composite
def cube_scenario(draw, max_dims=3, max_side=12):
    """A random array plus a random sequence of updates and queries."""
    dims = draw(st.integers(1, max_dims))
    shape = tuple(draw(st.integers(1, max_side)) for _ in range(dims))
    seed = draw(st.integers(0, 2**31))
    rng = np.random.default_rng(seed)
    array = rng.integers(-9, 10, size=shape)
    updates = []
    for _ in range(draw(st.integers(0, 12))):
        cell = tuple(int(rng.integers(0, s)) for s in shape)
        updates.append((cell, int(rng.integers(-9, 10))))
    queries = []
    for _ in range(draw(st.integers(1, 12))):
        low = tuple(int(rng.integers(0, s)) for s in shape)
        high = tuple(int(rng.integers(lo, s)) for lo, s in zip(low, shape))
        queries.append((low, high))
    return array, updates, queries


class TestLifecycleEquivalence:
    @pytest.mark.parametrize("challenger", CHALLENGERS)
    @settings(max_examples=40, deadline=None)
    @given(scenario=cube_scenario())
    def test_full_lifecycle_matches_naive(self, challenger, scenario):
        array, updates, queries = scenario
        oracle = NaiveArray.from_array(array)
        method = method_class(challenger).from_array(array)
        for cell, delta in updates:
            oracle.add(cell, delta)
            method.add(cell, delta)
        for low, high in queries:
            assert method.range_sum(low, high) == oracle.range_sum(low, high)
        assert method.total() == oracle.total()
        assert np.array_equal(method.to_dense(), oracle.to_dense())

    @pytest.mark.parametrize("challenger", CHALLENGERS)
    def test_incremental_build_equals_bulk(self, challenger, rng):
        array = rng.integers(0, 10, size=(9, 11))
        bulk = method_class(challenger).from_array(array)
        incremental = method_class(challenger)(array.shape)
        for cell in np.ndindex(*array.shape):
            if array[cell]:
                incremental.add(cell, int(array[cell]))
        for probe in [(0, 0), (8, 10), (4, 7), (8, 0), (0, 10)]:
            assert bulk.prefix_sum(probe) == incremental.prefix_sum(probe)


class TestPairwiseAgreement:
    """All methods pairwise agree — catches shared-oracle blind spots."""

    def test_all_methods_identical_prefixes(self, rng):
        array = rng.integers(0, 50, size=(16, 16))
        methods = [method_class(name).from_array(array) for name in CHALLENGERS]
        for _ in range(25):
            cell = tuple(int(rng.integers(0, 16)) for _ in range(2))
            values = {m.name: m.prefix_sum(cell) for m in methods}
            assert len(set(values.values())) == 1, values


class TestAlgebraicProperties:
    """Invariants that must hold for any correct range-sum structure."""

    @pytest.mark.parametrize("challenger", CHALLENGERS + ["naive"])
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 2**31), split_axis=st.integers(0, 1))
    def test_range_additivity_under_partition(self, challenger, seed, split_axis):
        """Splitting a range along any axis preserves the total."""
        rng = np.random.default_rng(seed)
        array = rng.integers(-9, 10, size=(10, 10))
        method = method_class(challenger).from_array(array)
        low = (1, 2)
        high = (8, 9)
        cut = int(rng.integers(low[split_axis], high[split_axis]))
        first_high = list(high)
        first_high[split_axis] = cut
        second_low = list(low)
        second_low[split_axis] = cut + 1
        whole = method.range_sum(low, high)
        first = method.range_sum(low, tuple(first_high))
        second = method.range_sum(tuple(second_low), high)
        assert whole == first + second

    @pytest.mark.parametrize("challenger", CHALLENGERS)
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 2**31))
    def test_update_linearity(self, challenger, seed):
        """A +delta then -delta round trip is a no-op for every query."""
        rng = np.random.default_rng(seed)
        array = rng.integers(0, 10, size=(8, 8))
        method = method_class(challenger).from_array(array)
        cell = tuple(int(rng.integers(0, 8)) for _ in range(2))
        delta = int(rng.integers(1, 50))
        before = method.prefix_sum((7, 7))
        method.add(cell, delta)
        assert method.prefix_sum((7, 7)) == before + delta
        method.add(cell, -delta)
        assert method.prefix_sum((7, 7)) == before
        assert np.array_equal(method.to_dense(), array)

    @pytest.mark.parametrize("challenger", CHALLENGERS)
    def test_prefix_monotone_for_nonnegative_data(self, challenger, rng):
        array = rng.integers(0, 10, size=(12,))
        method = method_class(challenger).from_array(array)
        prefixes = [method.prefix_sum((i,)) for i in range(12)]
        assert prefixes == sorted(prefixes)

    @pytest.mark.parametrize("challenger", CHALLENGERS + ["naive"])
    def test_total_equals_full_range(self, challenger, rng):
        array = rng.integers(-5, 6, size=(7, 9))
        method = method_class(challenger).from_array(array)
        assert method.total() == method.range_sum((0, 0), (6, 8)) == array.sum()


class TestFloatEquivalence:
    @pytest.mark.parametrize("challenger", CHALLENGERS)
    def test_float_cubes_agree_with_oracle(self, challenger, rng):
        array = rng.random((9, 9)) * 100
        oracle = NaiveArray.from_array(array)
        method = method_class(challenger).from_array(array)
        for _ in range(20):
            low = tuple(int(rng.integers(0, 9)) for _ in range(2))
            high = tuple(int(rng.integers(lo, 9)) for lo in low)
            assert method.range_sum(low, high) == pytest.approx(
                oracle.range_sum(low, high), rel=1e-9
            )
