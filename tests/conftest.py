"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.methods import method_names


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator per test."""
    return np.random.default_rng(0xDDC)


@pytest.fixture
def lock_sanitizer():
    """A strict LockSanitizer on a manual clock, for engine tests.

    Use with :func:`repro.analysis.raceguard.attach_engine` to make a
    test fail the moment the engine inverts a lock order or mutates
    shared state unguarded — the runtime twin of REP009/REP010.
    """
    from repro.analysis.raceguard import LockSanitizer
    from repro.obs.clock import ManualClock

    return LockSanitizer(ManualClock(), strict=True)


@pytest.fixture(
    params=[
        "naive",
        "ps",
        "rps",
        "fenwick",
        "segtree",
        "basic-ddc",
        "ddc",
        "vector",
    ]
)
def method_name(request) -> str:
    """Every registered range-sum method name."""
    return request.param


def pytest_configure(config) -> None:
    # Guard: the parametrised fixture above must stay in sync with the
    # registry; failing loudly here beats silently skipping a method.
    expected = {
        "naive",
        "ps",
        "rps",
        "fenwick",
        "segtree",
        "basic-ddc",
        "ddc",
        "vector",
    }
    assert expected == set(method_names()), (
        "method registry changed; update the method_name fixture"
    )
