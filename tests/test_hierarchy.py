"""Tests for hierarchical dimensions (drill-down as range queries)."""

from __future__ import annotations

import pytest

from repro.exceptions import SchemaError
from repro.olap import (
    CubeSchema,
    DataCube,
    HierarchyDimension,
    IntegerDimension,
)


@pytest.fixture
def geo() -> HierarchyDimension:
    return HierarchyDimension(
        "geo",
        {
            "emea": {"de": ["berlin", "munich"], "fr": ["paris", "lyon"]},
            "amer": {"us": ["nyc", "sf", "austin"], "ca": ["toronto"]},
            "apac": {"jp": ["tokyo"]},
        },
    )


@pytest.fixture
def cube(geo) -> DataCube:
    schema = CubeSchema([geo, IntegerDimension("day", 0, 9)], measure="sales")
    cube = DataCube(schema)
    for city, amount in [
        ("berlin", 10.0),
        ("munich", 20.0),
        ("paris", 5.0),
        ("nyc", 100.0),
        ("sf", 200.0),
        ("tokyo", 7.0),
    ]:
        cube.insert({"geo": city, "day": 1}, amount)
    return cube


class TestStructure:
    def test_leaves_in_dfs_order(self, geo):
        assert geo.size == 9
        assert geo.value_of(0) == "berlin"
        assert geo.value_of(8) == "tokyo"

    def test_depth(self, geo):
        assert geo.depth() == 3

    def test_member_ranges_are_contiguous(self, geo):
        assert geo.range_of("emea") == (0, 3)
        assert geo.range_of("de") == (0, 1)
        assert geo.range_of("us") == (4, 6)
        assert geo.range_of("apac") == (8, 8)

    def test_leaf_is_its_own_member(self, geo):
        assert geo.member("berlin") == ("berlin", "berlin")

    def test_members_at_levels(self, geo):
        assert geo.members_at(1) == ["emea", "amer", "apac"]
        assert geo.members_at(2) == ["de", "fr", "us", "ca", "jp"]
        assert "berlin" in geo.members_at(3)

    def test_leaves_of(self, geo):
        assert geo.leaves_of("fr") == ["paris", "lyon"]
        assert geo.leaves_of("amer") == ["nyc", "sf", "austin", "toronto"]

    def test_index_of_leaf(self, geo):
        assert geo.index_of("munich") == 1

    def test_index_of_internal_member_rejected(self, geo):
        with pytest.raises(SchemaError, match="internal level"):
            geo.index_of("emea")

    def test_unknown_value(self, geo):
        with pytest.raises(SchemaError):
            geo.index_of("atlantis")
        with pytest.raises(SchemaError):
            geo.member("atlantis")

    def test_members_at_validation(self, geo):
        with pytest.raises(SchemaError):
            geo.members_at(0)
        assert geo.members_at(9) == []


class TestValidation:
    def test_duplicate_labels_rejected(self):
        with pytest.raises(SchemaError):
            HierarchyDimension("bad", {"a": ["x"], "b": ["x"]})

    def test_duplicate_internal_labels_rejected(self):
        with pytest.raises(SchemaError):
            HierarchyDimension("bad", {"a": {"c": ["x"]}, "b": {"c": ["y"]}})

    def test_empty_hierarchy_rejected(self):
        with pytest.raises(SchemaError):
            HierarchyDimension("bad", {})

    def test_empty_member_rejected(self):
        with pytest.raises(SchemaError):
            HierarchyDimension("bad", {"a": []})

    def test_non_dict_rejected(self):
        with pytest.raises(SchemaError):
            HierarchyDimension("bad", ["just", "a", "list"])

    def test_scalar_spec_rejected(self):
        with pytest.raises(SchemaError):
            HierarchyDimension("bad", {"a": "oops"})

    def test_nested_list_rejected(self):
        with pytest.raises(SchemaError):
            HierarchyDimension("bad", {"a": [["nested"]]})


class TestQueries:
    def test_sum_at_every_level(self, cube, geo):
        assert cube.sum(geo=geo.member("emea")) == 35.0
        assert cube.sum(geo=geo.member("de")) == 30.0
        assert cube.sum(geo=geo.member("berlin")) == 10.0
        assert cube.sum() == 342.0

    def test_rollup_at_levels(self, cube, geo):
        top = cube.rollup("geo", geo.buckets(1))
        assert top == [("emea", 35.0), ("amer", 300.0), ("apac", 7.0)]
        mid = dict(cube.rollup("geo", geo.buckets(2)))
        assert mid["us"] == 300.0
        assert mid["ca"] == 0.0

    def test_level_totals_agree(self, cube, geo):
        for level in (1, 2, 3):
            rolled = cube.rollup("geo", geo.buckets(level))
            assert sum(total for _, total in rolled) == cube.sum()

    def test_drill_down_path(self, cube, geo):
        """amer -> us -> sf narrows consistently."""
        amer = cube.sum(geo=geo.member("amer"))
        us = cube.sum(geo=geo.member("us"))
        sf = cube.sum(geo=geo.member("sf"))
        assert amer >= us >= sf
        assert sf == 200.0

    def test_pivot_with_hierarchy(self, cube, geo):
        table = cube.pivot("geo", geo.buckets(1), "day", [("d1", 1), ("rest", (2, 9))])
        assert table[0] == ["emea", 35.0, 0.0]
        assert table[1] == ["amer", 300.0, 0.0]

    def test_updates_visible_through_hierarchy(self, cube, geo):
        cube.insert({"geo": "lyon", "day": 2}, 50.0)
        assert cube.sum(geo=geo.member("fr")) == 55.0
        assert cube.sum(geo=geo.member("emea")) == 85.0
