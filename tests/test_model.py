"""Tests for the analytic cost/storage model against the paper's numbers."""

from __future__ import annotations

import math

import pytest

from repro.model import (
    basic_ddc_query_cost,
    basic_ddc_update_cost,
    bc_tree_op_cost,
    ddc_update_cost,
    elision_levels,
    elision_query_leaf_cost,
    elision_storage_series,
    figure1_series,
    full_cube_size,
    mips_seconds,
    overlay_cells,
    overlay_fraction,
    ps_update_cost,
    query_cost,
    render_figure1,
    render_table1,
    render_table2,
    round_to_power_of_ten,
    rps_update_cost,
    table1,
    table2,
    tree_storage_cells,
    update_cost,
)


class TestTable1:
    """Table 1: update cost functions by method, d=8."""

    def test_published_exponents(self):
        """The paper's rounded powers of 10 for each n."""
        rows = table1()
        by_n = {row.n: row.exponents() for row in rows}
        # n=10^2: cube 1E16, PS 1E16, RPS 1E8, DDC ~1E7
        assert by_n[1e2] == (16, 16, 8, 7)
        # n=10^4: cube 1E32, PS 1E32, RPS 1E16, DDC ~1E9
        assert by_n[1e4] == (32, 32, 16, 9)
        # n=10^9: cube 1E72, PS 1E72, RPS 1E36, DDC ~1E12
        assert by_n[1e9] == (72, 72, 36, 12)

    def test_ps_equals_cube_size(self):
        for row in table1():
            assert row.ps == row.cube_size

    def test_rps_is_square_root_of_ps(self):
        for row in table1():
            assert row.rps == pytest.approx(math.sqrt(row.ps))

    def test_ddc_formula(self):
        assert ddc_update_cost(1e2, 8) == pytest.approx(math.log2(1e2) ** 8)

    def test_six_month_narrative(self):
        """Paper: PS at n=10^2, d=8 needs >6 months on a 500 MIPS CPU."""
        seconds = mips_seconds(ps_update_cost(1e2, 8))
        assert seconds > 6 * 30 * 86400

    def test_231_day_narrative(self):
        """Paper: RPS at n=10^4 needs 231 days to update a single cell."""
        days = mips_seconds(rps_update_cost(1e4, 8)) / 86400
        assert days == pytest.approx(231.48, abs=0.5)

    def test_ddc_subsecond_narrative(self):
        """Paper: the DDC updates the same cells in under ~2 seconds."""
        assert mips_seconds(ddc_update_cost(1e2, 8)) < 1.0
        assert mips_seconds(ddc_update_cost(1e4, 8)) < 2.0

    def test_render_contains_rows(self):
        text = render_table1(table1())
        assert "d=8" in text
        assert "1E+72" in text
        assert "1E+36" in text


class TestFigure1:
    def test_series_cover_paper_domain(self):
        series = figure1_series()
        assert set(series) == {"ps", "rps", "ddc"}
        ns = [n for n, _ in series["ps"]]
        assert ns[0] == 10.0 and ns[-1] == 1e9

    def test_strict_ordering_everywhere(self):
        """PS > RPS > DDC at every plotted n (the figure's visual claim)."""
        series = figure1_series()
        for (n, ps), (_, rps), (_, ddc) in zip(
            series["ps"], series["rps"], series["ddc"]
        ):
            if n >= 100:
                assert ps > rps > ddc, n

    def test_log_log_slopes(self):
        """PS slope d, RPS slope d/2, DDC nearly flat on log-log axes."""
        series = figure1_series(d=8)

        def slope(points):
            (n1, c1), (n2, c2) = points[2], points[-1]
            return (math.log10(c2) - math.log10(c1)) / (
                math.log10(n2) - math.log10(n1)
            )

        assert slope(series["ps"]) == pytest.approx(8.0)
        assert slope(series["rps"]) == pytest.approx(4.0)
        assert slope(series["ddc"]) < 1.0

    def test_render(self):
        text = render_figure1(figure1_series())
        assert "Figure 1" in text
        assert "ddc" in text


class TestTable2:
    def test_published_percentages(self):
        """75%, 43.75%, 23.44%, 12.11%, 6.15% — the paper's exact column."""
        rows = table2()
        percentages = [round(row.percentage, 2) for row in rows]
        assert percentages == [75.0, 43.75, 23.44, 12.11, 6.15]

    def test_published_cell_counts(self):
        rows = table2()
        assert [(row.k, row.overlay_box, row.region) for row in rows] == [
            (2, 3, 4),
            (4, 7, 16),
            (8, 15, 64),
            (16, 31, 256),
            (32, 63, 1024),
        ]

    def test_overlay_cells_formula(self):
        assert overlay_cells(4, 3) == 64 - 27
        assert overlay_fraction(2, 2) == 0.75

    def test_fraction_decreases_with_k(self):
        fractions = [overlay_fraction(k, 2) for k in (2, 4, 8, 16, 32, 64)]
        assert fractions == sorted(fractions, reverse=True)

    def test_render(self):
        text = render_table2(table2())
        assert "Table 2" in text
        assert "75.00%" in text


class TestCostFunctions:
    def test_update_cost_dispatch(self):
        assert update_cost("ps", 100, 2) == 10_000
        assert update_cost("naive", 100, 2) == 1
        assert update_cost("rps", 100, 2) == pytest.approx(100)

    def test_query_cost_dispatch(self):
        assert query_cost("naive", 10, 2) == 100
        assert query_cost("ps", 10, 3) == 8

    def test_basic_ddc_series_formula(self):
        """Section 3.3: d (n^(d-1) - 1) / (2^(d-1) - 1)."""
        assert basic_ddc_update_cost(8, 2) == pytest.approx(2 * (8 - 1) / 1)
        assert basic_ddc_update_cost(16, 3) == pytest.approx(3 * (256 - 1) / 3)
        assert basic_ddc_update_cost(16, 1) == pytest.approx(4.0)

    def test_basic_ddc_query_is_logarithmic(self):
        assert basic_ddc_query_cost(256, 2) == pytest.approx(3 * 8)

    def test_bc_tree_cost(self):
        assert bc_tree_op_cost(16, fanout=16) == pytest.approx(16.0)
        assert bc_tree_op_cost(1) == 1.0

    def test_ddc_beats_basic_ddc_asymptotically(self):
        assert ddc_update_cost(2**20, 3) < basic_ddc_update_cost(2**20, 3)

    def test_edge_cases(self):
        assert ddc_update_cost(1, 4) == 1.0
        assert basic_ddc_update_cost(1, 1) == 1.0
        assert full_cube_size(10, 3) == 1000

    def test_round_to_power_of_ten(self):
        assert round_to_power_of_ten(1e16) == 16
        assert round_to_power_of_ten(3.1e7) == 7
        assert round_to_power_of_ten(9.9e7) == 8
        assert round_to_power_of_ten(0) == 0


class TestStorageModel:
    def test_tree_storage_exceeds_array(self):
        assert tree_storage_cells(64, 2, leaf_side=2) > 64 * 64

    def test_elision_series_monotone(self):
        """Section 4.4: storage approaches |A| as levels are elided."""
        series = elision_storage_series(256, 2, leaf_sides=(2, 4, 8, 16, 32))
        overheads = [overhead for _, _, overhead in series]
        assert overheads == sorted(overheads, reverse=True)
        assert overheads[-1] < overheads[0] / 4

    def test_elision_query_cost(self):
        assert elision_query_leaf_cost(4, 2) == 16
        assert elision_query_leaf_cost(8, 3) == 512

    def test_elision_levels(self):
        assert elision_levels(2) == 0
        assert elision_levels(8) == 2

    def test_small_cube_storage(self):
        assert tree_storage_cells(1, 2, leaf_side=2) == 1
