"""Tests for the vectorised b-ary slab-tree backend.

The pure-python :class:`~repro.core.ddc.DynamicDataCube` is the
reference implementation of the paper's algorithm; these tests pin the
:class:`~repro.methods.vector.VectorSlabCube` production backend to it
(and to a dense numpy oracle) across shapes, dimensionalities, engines,
and kernel configurations.
"""

from __future__ import annotations

import os
import subprocess
import sys

import numpy as np
import pytest

from repro.analysis import audit
from repro.core import slab_tree
from repro.core.slab_tree import SlabTree, kernel_backend
from repro.engine import ShardedEngine
from repro.engine.shm import get_read_kernel, slab_range_sum_many_vector
from repro.exceptions import ConfigurationError, StructureError
from repro.methods import build_method
from repro.methods.vector import VectorSlabCube
from repro.obs import NULL_OBS, Observability
from repro.workloads import clustered, random_ranges


def dense_range_sum(data, low, high):
    region = tuple(slice(lo, hi + 1) for lo, hi in zip(low, high))
    return int(np.asarray(data)[region].sum())


class TestSlabTree:
    @pytest.mark.parametrize(
        "shape", [(8,), (16, 16), (7, 13), (33, 5), (4, 4, 4), (6, 3, 9)]
    )
    def test_prefix_matches_dense_cumsum(self, shape, rng):
        data = rng.integers(-9, 10, size=shape)
        tree = SlabTree(shape)
        tree.load_dense(data)
        prefix = data.copy()
        for axis in range(len(shape)):
            prefix = prefix.cumsum(axis=axis)
        cells = [
            tuple(int(rng.integers(0, n)) for n in shape) for _ in range(40)
        ]
        for cell in cells:
            assert int(tree.prefix_one(cell)) == int(prefix[cell])
        coords = np.asarray(cells, dtype=np.int64)
        assert list(tree.prefix_many(coords)) == [
            int(prefix[cell]) for cell in cells
        ]

    def test_range_many_matches_dense(self, rng):
        shape = (24, 24)
        data = rng.integers(-9, 10, size=shape)
        tree = SlabTree(shape, branching=4)
        tree.load_dense(data)
        queries = random_ranges(shape, 50, seed=3)
        lows = np.asarray([q.low for q in queries], dtype=np.int64)
        highs = np.asarray([q.high for q in queries], dtype=np.int64)
        got = list(tree.range_many(lows, highs))
        expected = [dense_range_sum(data, q.low, q.high) for q in queries]
        assert [int(v) for v in got] == expected

    def test_point_and_batch_updates_agree(self, rng):
        shape = (17, 9)
        one = SlabTree(shape, branching=4)
        two = SlabTree(shape, branching=4)
        dense = np.zeros(shape, dtype=np.int64)
        updates = []
        for _ in range(60):
            cell = tuple(int(rng.integers(0, n)) for n in shape)
            delta = int(rng.integers(-5, 6))
            updates.append((cell, delta))
            dense[cell] += delta
            one.add_one(cell, delta)
        cells = np.asarray([cell for cell, _ in updates], dtype=np.int64)
        deltas = np.asarray([delta for _, delta in updates], dtype=np.int64)
        two.add_batch(cells, deltas)
        assert np.array_equal(one.buffer, two.buffer)
        prefix = dense.cumsum(axis=0).cumsum(axis=1)
        cell = tuple(n - 1 for n in shape)
        assert int(one.prefix_one(cell)) == int(prefix[cell])

    def test_branching_must_be_power_of_two(self):
        with pytest.raises(ConfigurationError):
            SlabTree((8, 8), branching=6)
        with pytest.raises(ConfigurationError):
            SlabTree((8, 8), branching=1)
        with pytest.raises(ConfigurationError):
            SlabTree((0, 8))

    def test_level_layout_covers_buffer(self):
        tree = SlabTree((64, 64), branching=8)
        layout = tree.level_layout()
        assert len(layout) == tree.level_count
        assert sum(row["cells"] for row in layout) == tree.memory_cells()

    @pytest.mark.parametrize("shape", [(33, 17), (5, 6, 4)])
    def test_validate_round_trips_and_detects_corruption(self, shape, rng):
        data = rng.integers(-9, 10, size=shape)
        tree = SlabTree(shape, branching=4)
        tree.load_dense(data.astype(np.int64))
        tree.validate()
        tree.buffer[tree._levels[1].offset + 3] += 1
        with pytest.raises(StructureError, match="inconsistent"):
            tree.validate()

    def test_audit_dispatches_to_validate(self, rng):
        # ``repro audit`` reaches the method through the analysis
        # fallback — a vector cube must be auditable like every other
        # structure, and a planted slab corruption must surface a path.
        data = rng.integers(0, 50, size=(16, 16))
        cube = VectorSlabCube.from_array(data, branching=4)
        report = audit(cube)
        assert report.checks == 1 and not report.findings
        # Corrupt an *internal* slab cell — the redundant part of the
        # decomposition, which the round trip must flag.  (A tree whose
        # every level is leaf-level is just the free prefix grid and
        # has no redundancy to check.)
        cube.tree.buffer[cube.tree._levels[0].offset + 1] += 1
        with pytest.raises(StructureError, match="slab"):
            audit(cube)

    def test_numpy_fallback_is_live_without_numba(self):
        # The container has no numba, so the fallback must be active
        # (and the claim is load-bearing: CI exercises exactly this path).
        if slab_tree.HAVE_NUMBA:
            pytest.skip("numba present; fallback covered by REPRO_NO_NUMBA")
        assert kernel_backend() == "numpy"

    def test_no_numba_env_forces_numpy_kernel(self):
        code = (
            "from repro.core.slab_tree import kernel_backend; "
            "print(kernel_backend())"
        )
        env = dict(os.environ, REPRO_NO_NUMBA="1")
        env["PYTHONPATH"] = os.pathsep.join(sys.path)
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        assert out.stdout.strip() == "numpy"


class TestVectorSlabCube:
    @pytest.mark.parametrize("shape", [(16,), (16, 16), (9, 21), (5, 6, 7)])
    def test_matches_reference_ddc(self, shape, rng):
        data = rng.integers(-9, 10, size=shape)
        vector = build_method("vector", data)
        reference = build_method("ddc", data)
        queries = random_ranges(shape, 30, seed=7)
        for query in queries:
            assert int(vector.range_sum(query.low, query.high)) == int(
                reference.range_sum(query.low, query.high)
            )
        ranges = [(q.low, q.high) for q in queries]
        assert [int(v) for v in vector.range_sum_many(ranges)] == [
            int(v) for v in reference.range_sum_many(ranges)
        ]

    def test_updates_then_queries_match_dense(self, rng):
        shape = (12, 12)
        dense = np.zeros(shape, dtype=np.int64)
        vector = VectorSlabCube(shape)
        for _ in range(40):
            cell = tuple(int(rng.integers(0, n)) for n in shape)
            delta = int(rng.integers(-5, 6))
            vector.add(cell, delta)
            dense[cell] += delta
        batch = []
        for _ in range(20):
            cell = tuple(int(rng.integers(0, n)) for n in shape)
            delta = int(rng.integers(-5, 6))
            batch.append((cell, delta))
            dense[cell] += delta
        vector.batch_crossover_override = 1
        vector.add_many(batch)
        vector.batch_crossover_override = None
        for query in random_ranges(shape, 25, seed=9):
            assert int(vector.range_sum(query.low, query.high)) == (
                dense_range_sum(dense, query.low, query.high)
            )

    def test_batch_and_scalar_paths_agree(self, rng):
        data = rng.integers(-9, 10, size=(20, 20))
        vector = build_method("vector", data)
        cells = [
            tuple(int(rng.integers(0, 20)) for _ in range(2))
            for _ in range(32)
        ]
        vector.batch_crossover_override = 1
        forced = vector.prefix_sum_many(cells)
        vector.batch_crossover_override = None
        scalar = [vector.prefix_sum(cell) for cell in cells]
        assert [int(v) for v in forced] == [int(v) for v in scalar]

    def test_from_array_round_trips_dense(self, rng):
        data = rng.integers(-9, 10, size=(10, 14))
        vector = VectorSlabCube.from_array(data)
        assert np.array_equal(vector.to_dense(), data)

    def test_counters_are_path_independent(self, rng):
        """Cost counters match across the batch and scalar paths."""
        data = rng.integers(-9, 10, size=(16, 16))
        vector = build_method("vector", data)
        cells = [
            tuple(int(rng.integers(0, 16)) for _ in range(2))
            for _ in range(24)
        ]
        vector.stats.reset()
        vector.batch_crossover_override = 1
        vector.prefix_sum_many(cells)
        batched = vector.stats.snapshot()
        vector.stats.reset()
        vector.batch_crossover_override = None
        vector.batch_crossover = 10**9
        try:
            vector.prefix_sum_many(cells)
        finally:
            del vector.batch_crossover  # restore the class-level "auto"
        scalar = vector.stats.snapshot()
        assert batched.node_visits == scalar.node_visits
        assert batched.cell_reads == scalar.cell_reads

    def test_obs_instrumentation_records_descent(self, rng):
        data = rng.integers(0, 5, size=(16, 16))
        vector = build_method("vector", data)
        obs = Observability()
        vector.obs = obs
        vector.prefix_sum((3, 3))
        vector.add((1, 2), 4)
        vector.batch_crossover_override = 1
        vector.prefix_sum_many([(0, 0), (5, 5)])
        rendered = obs.metrics.render_prometheus()
        assert "descent_depth" in rendered and "slab-tree" in rendered, (
            f"no slab-tree descent samples in:\n{rendered}"
        )
        vector.obs = NULL_OBS
        vector.prefix_sum((2, 2))  # NULL_OBS path stays exercised


class TestVectorEngine:
    @pytest.mark.parametrize("shards", [1, 2, 4, 7])
    @pytest.mark.parametrize("executor", [None, "process"])
    def test_engine_equivalence(self, shards, executor, rng):
        data = clustered((32, 32), seed=13)
        reference = build_method("ddc", data)
        engine = ShardedEngine.from_array(
            data,
            shards=shards,
            method="vector",
            workers=2 if executor else None,
            executor=executor,
        )
        try:
            queries = random_ranges((32, 32), 20, seed=17)
            for query in queries:
                assert int(engine.range_sum(query.low, query.high)) == int(
                    reference.range_sum(query.low, query.high)
                )
            for _ in range(10):
                cell = tuple(int(rng.integers(0, 32)) for _ in range(2))
                delta = int(rng.integers(-5, 6))
                engine.add(cell, delta)
                reference.add(cell, delta)
            for query in queries:
                assert int(engine.range_sum(query.low, query.high)) == int(
                    reference.range_sum(query.low, query.high)
                )
        finally:
            engine.close()

    def test_unknown_read_kernel_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown slab read kernel"):
            get_read_kernel("warp-drive")

    def test_vector_read_kernel_matches_scalar(self, rng):
        data = rng.integers(-9, 10, size=(16, 16))
        prefix = data.cumsum(axis=0).cumsum(axis=1)
        scalar_kernel = get_read_kernel("scalar")
        queries = random_ranges((16, 16), 30, seed=23)
        ranges = [(q.low, q.high) for q in queries]
        scalar = scalar_kernel(prefix, ranges)
        vectorised = slab_range_sum_many_vector(prefix, ranges)
        assert [int(v) for v in scalar] == [int(v) for v in vectorised]
        assert [int(v) for v in scalar] == [
            dense_range_sum(data, q.low, q.high) for q in queries
        ]


class TestCalibration:
    def test_auto_crossover_resolves_to_int(self, rng):
        from repro.methods.crossover import reset_calibration

        reset_calibration()
        data = rng.integers(0, 5, size=(16, 16))
        vector = build_method("vector", data)
        crossover = vector._effective_crossover()
        assert isinstance(crossover, int)
        assert crossover >= 1

    def test_env_pin_overrides_probe(self, monkeypatch, rng):
        from repro.methods import crossover as crossover_module

        monkeypatch.setenv("REPRO_BATCH_CROSSOVER", "7")
        crossover_module.reset_calibration()
        try:
            data = rng.integers(0, 5, size=(16, 16))
            vector = build_method("vector", data)
            assert vector._effective_crossover() == 7
        finally:
            monkeypatch.delenv("REPRO_BATCH_CROSSOVER")
            crossover_module.reset_calibration()
