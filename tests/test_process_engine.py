"""Tests for the process executor: shared-memory slabs, delta shipping,
seqlock reads, and worker-kill recovery.

The load-bearing properties:

* a process-mode engine — any shard count, including one that leaves
  an uneven last shard — answers cell-for-cell identically to the
  unsharded structure, through the parent-side delta buffer, the
  pipelined ship/ack window, and the zero-copy seqlock read path;
* SIGKILLing a worker never corrupts an answer: state lives in the
  shared slabs plus the parent's ledger, so recovery is exact, and the
  one unrecoverable window (death mid-apply) surfaces loudly instead
  of serving wrong sums.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import (
    FaultInjector,
    ResiliencePolicy,
    SerialExecutor,
    ShardedEngine,
    ShardPlan,
    ShardSlabStore,
    ThreadedExecutor,
)
from repro.engine.process import ProcessExecutor
from repro.engine.shm import HEADER_APPLIED, HEADER_SEQ
from repro.exceptions import WorkerCrashedError
from repro.methods import build_method
from repro.obs import ManualClock
from repro.workloads import RangeQuery, clustered, read_write_stream

SHAPE = (18, 9)


def _replay(target, events):
    reads = []
    for event in events:
        if isinstance(event, RangeQuery):
            reads.append(int(target.range_sum(event.low, event.high)))
        else:
            target.add(event.cell, event.delta)
    return reads


def _process_engine(data, shards, **kwargs):
    return ShardedEngine.from_array(
        data, shards=shards, executor="process", **kwargs
    )


class TestProcessEquivalence:
    @pytest.mark.parametrize("shards", [1, 2, 4, 7])
    def test_stream_matches_unsharded(self, shards):
        """K slab-backed shards == unsharded DDC under a mixed stream
        (K=7 leaves an uneven last shard on an 18-row cube)."""
        data = clustered(SHAPE, seed=21)
        events = read_write_stream(
            SHAPE, 160, mix=0.7, locality="zipf", seed=22
        )
        baseline = build_method("ddc", data)
        with _process_engine(data, shards) as engine:
            assert _replay(engine, events) == _replay(baseline, events)

    def test_ipc_reads_mode_matches_direct(self):
        data = clustered(SHAPE, seed=23)
        events = read_write_stream(
            SHAPE, 120, mix=0.8, locality="uniform", seed=24
        )
        with _process_engine(data, 4) as direct:
            expected = _replay(direct, events)
        with _process_engine(data, 4, ipc_reads=True) as remote:
            assert remote.process_pool.ipc_reads
            assert _replay(remote, events) == expected

    def test_pooled_fanout_matches_sequential(self):
        data = clustered(SHAPE, seed=25)
        events = read_write_stream(
            SHAPE, 120, mix=0.8, locality="zipf", seed=26
        )
        with ShardedEngine.from_array(data, shards=4) as serial:
            expected = _replay(serial, events)
        with _process_engine(data, 4, workers=2, ipc_reads=True) as pooled:
            assert _replay(pooled, events) == expected

    def test_query_update_query_through_delta_shipping(self):
        """Reads stay exact at every stage of a delta's life: buffered
        parent-side, shipped-but-unacknowledged, and applied."""
        data = clustered(SHAPE, seed=27)
        reference = data.astype(np.int64).copy()
        with _process_engine(data, 2) as engine:
            pool = engine.process_pool

            def check():
                assert int(engine.range_sum((0, 0), (17, 8))) == int(
                    reference.sum()
                )
                assert int(engine.range_sum((3, 1), (12, 6))) == int(
                    reference[3:13, 1:7].sum()
                )

            check()
            # A handful of writes: fewer than ship_threshold, so they sit
            # in the parent-side buffer — reads must fold them in.
            for step in range(pool.ship_threshold - 1):
                cell = (step % SHAPE[0], (2 * step) % SHAPE[1])
                engine.add(cell, 3)
                reference[cell] += 3
            assert any(
                pool.pending_writes(shard) for shard in range(pool.store.count)
            )
            check()
            # Push past the threshold: the batch ships, acks stay
            # outstanding until something fences the lane.
            for step in range(3 * pool.ship_threshold):
                cell = ((5 * step) % SHAPE[0], step % SHAPE[1])
                engine.add(cell, -2)
                reference[cell] -= 2
            check()
            # And a flush drains everything to the slabs themselves.
            pool.flush()
            assert not any(
                pool.pending_writes(shard) for shard in range(pool.store.count)
            )
            check()


class TestKillRecovery:
    def test_kill_idle_worker_recovers_silently(self):
        data = clustered(SHAPE, seed=31)
        reference = data.astype(np.int64).copy()
        with _process_engine(data, 4) as engine:
            pool = engine.process_pool
            before = int(engine.range_sum((0, 0), (17, 8)))
            for shard in range(4):
                pool.kill_worker(shard)
            # Zero-copy reads never needed the worker — still exact, and
            # no respawn is even required until a write touches the lane.
            assert int(engine.range_sum((0, 0), (17, 8))) == before
            engine.add((1, 1), 9)
            reference[1, 1] += 9
            pool.flush()
            assert int(engine.range_sum((0, 0), (17, 8))) == int(
                reference.sum()
            )
            assert pool.pool_info()["restarts"] >= 1

    def test_kill_with_writes_in_flight_replays_ledger(self):
        """Buffered and shipped-but-unacked deltas both survive a
        SIGKILL: the parent replays its ledger into the slab."""
        data = clustered(SHAPE, seed=32)
        reference = data.astype(np.int64).copy()
        with _process_engine(data, 4) as engine:
            pool = engine.process_pool
            for step in range(40):
                cell = (step % SHAPE[0], (3 * step) % SHAPE[1])
                engine.add(cell, 5)
                reference[cell] += 5
            for shard in range(4):
                pool.kill_worker(shard)
            assert int(engine.range_sum((0, 0), (17, 8))) == int(
                reference.sum()
            )
            assert int(engine.range_sum((2, 2), (16, 7))) == int(
                reference[2:17, 2:8].sum()
            )
            # Writes keep flowing after the respawn.
            engine.add((9, 4), 11)
            reference[9, 4] += 11
            assert int(engine.range_sum((0, 0), (17, 8))) == int(
                reference.sum()
            )

    def test_torn_batch_surfaces_worker_crashed(self):
        """A worker dead mid-apply (odd seqlock) cannot be replayed —
        the fence must raise instead of serving a torn slab."""
        data = clustered(SHAPE, seed=33)
        with _process_engine(data, 1) as engine:
            pool = engine.process_pool
            engine.add((0, 0), 7)
            pool.flush()
            pool.kill_worker(0)
            header = pool.store.header(0)
            header[HEADER_SEQ] += 1  # simulate death mid-apply
            pool._posted[0] += 1
            pool._ledgers[0].append((pool._posted[0], [((0, 0), 1)]))
            lane = pool._lanes[0]
            lane.pending = 1
            with pytest.raises(WorkerCrashedError):
                pool.fence(0)
            # The abandon repaired the seqlock and resynced the ledger,
            # so subsequent reads serve (and the next op respawns).
            assert int(header[HEADER_SEQ]) % 2 == 0
            assert not pool._ledgers[0]
            assert int(engine.range_sum((0, 0), (0, 0))) == int(data[0, 0]) + 7

    def test_injected_kills_trip_breaker_and_stay_exact(self):
        """FaultInjector kills against the real pool: every kill SIGKILLs
        a live worker, the shard breakers trip, and fallback degradation
        keeps every answer exact off the parent's slab mapping."""
        data = clustered(SHAPE, seed=34)
        baseline = build_method("ddc", data)
        clock = ManualClock()
        policy = ResiliencePolicy(
            max_retries=1,
            breaker_window=4,
            breaker_cooldown_seconds=60.0,
            degradation="fallback",
        )
        engine = _process_engine(
            data, 4, ipc_reads=True, resilience=policy
        )
        try:
            pool = engine.process_pool
            engine.wrap_executor(
                lambda inner: FaultInjector(
                    inner, clock=clock, seed=35, kill_rate=1.0
                )
            )
            queries = [
                ((0, 0), (17, 8)),
                ((1, 1), (16, 7)),
                ((4, 0), (13, 8)),
                ((0, 2), (17, 6)),
            ]
            for low, high in queries:
                assert int(engine.range_sum(low, high)) == int(
                    baseline.range_sum(low, high)
                )
            info = engine.resilience_info()
            assert any(
                breaker["state"] != "closed" for breaker in info["breakers"]
            )
            assert engine.executor.injected["kill"] > 0
            # The kills were real SIGKILLs — and with the breaker open,
            # nothing routes to the pool, so no op respawned the corpse.
            info = pool.pool_info()
            assert info["alive"] < info["workers"]
        finally:
            engine.close()


class TestSlabStore:
    def test_load_and_direct_reads_match_numpy(self):
        data = clustered(SHAPE, seed=41).astype(np.int64)
        plan = ShardPlan(SHAPE, 3)
        store = ShardSlabStore(plan)
        try:
            store.load_array(data)
            for index in range(plan.count):
                local = data[plan.slab(index)]
                shape = plan.shard_shape(index)
                assert store.range_sum(
                    index, (0,) * len(shape), tuple(s - 1 for s in shape)
                ) == int(local.sum())
        finally:
            store.destroy()

    def test_apply_deltas_and_header_roundtrip(self):
        plan = ShardPlan((8, 8), 2)
        store = ShardSlabStore(plan)
        try:
            store.apply_deltas(0, [((1, 1), 5), ((3, 0), -2)])
            assert store.range_sum(0, (0, 0), (3, 7)) == 3
            header = store.header(0)
            assert int(header[HEADER_SEQ]) == 0
            assert int(header[HEADER_APPLIED]) == 0
        finally:
            store.destroy()
        store.destroy()  # idempotent


class TestExecutorSelection:
    def test_single_shard_plan_runs_serial(self):
        """Satellite: shards == 1 has nothing to fan out — a thread pool
        would be pure dispatch overhead, so the engine degrades to the
        serial executor even when workers were requested."""
        data = clustered((8, 8), seed=51)
        with ShardedEngine.from_array(data, shards=1, workers=4) as engine:
            assert isinstance(engine.executor, SerialExecutor)
        with ShardedEngine.from_array(data, shards=2, workers=4) as engine:
            assert isinstance(engine.executor, ThreadedExecutor)

    def test_single_item_fanout_runs_inline(self):
        import threading

        executor = ThreadedExecutor(2)
        try:
            caller = threading.current_thread()
            seen = executor.map(
                lambda _: threading.current_thread(), ["only"]
            )
            assert seen == [caller]
            off_thread = executor.map(
                lambda _: threading.current_thread(), ["a", "b"]
            )
            assert all(thread is not caller for thread in off_thread)
        finally:
            executor.shutdown()

    def test_process_map_inlines_without_ipc_reads(self):
        import threading

        data = clustered((8, 8), seed=52)
        with _process_engine(data, 2) as engine:
            pool = engine.process_pool
            assert isinstance(pool, ProcessExecutor)
            caller = threading.current_thread()
            seen = pool.map(
                lambda _: threading.current_thread(), ["a", "b", "c"]
            )
            assert all(thread is caller for thread in seen)


class TestPoolIntrospection:
    def test_pool_info_shape(self):
        data = clustered(SHAPE, seed=61)
        with _process_engine(data, 4, workers=2) as engine:
            info = engine.pool_info()
            assert info["executor"] == "process"
            assert info["workers"] == 2
            assert info["alive"] == 2
            assert info["ipc_reads"] is False
            assert len(info["lanes"]) == 2
            owned = sorted(
                shard for lane in info["lanes"] for shard in lane["shards"]
            )
            assert owned == [0, 1, 2, 3]
            for lane in info["lanes"]:
                assert lane["alive"]
                assert lane["pending_acks"] == 0
        # Serial engines have no pool.
        with ShardedEngine.from_array(data, shards=2) as engine:
            assert engine.pool_info() is None
