"""Tests for structure conversion and rebuild utilities."""

from __future__ import annotations

import numpy as np
import pytest

from repro.convert import convert, rebuild
from repro.core.ddc import DynamicDataCube
from repro.exceptions import UnknownMethodError
from repro.methods import build_method, method_names
from repro.workloads import clustered, dense_uniform


class TestConvert:
    @pytest.mark.parametrize("source", ["naive", "ps", "ddc"])
    @pytest.mark.parametrize("target", ["naive", "ps", "rps", "fenwick", "basic-ddc", "ddc"])
    def test_all_pairs_preserve_contents(self, source, target, rng):
        data = rng.integers(-9, 10, size=(13, 9))
        original = build_method(source, data)
        converted = convert(original, target)
        assert converted.name == target
        assert np.array_equal(converted.to_dense(), data)
        assert converted.total() == data.sum()

    def test_source_unchanged(self, rng):
        data = rng.integers(0, 9, size=(8, 8))
        original = build_method("ddc", data)
        converted = convert(original, "ps")
        converted.add((0, 0), 100)
        assert np.array_equal(original.to_dense(), data)

    def test_target_options_forwarded(self, rng):
        data = rng.integers(0, 9, size=(16, 16))
        converted = convert(build_method("naive", data), "ddc", leaf_side=8)
        assert converted.leaf_side == 8
        assert np.array_equal(converted.to_dense(), data)

    def test_sparse_to_sparse_stays_sparse(self):
        domain = (512, 512)
        data = clustered(domain, clusters=2, points_per_cluster=50, seed=1)
        source = DynamicDataCube.from_array(data)
        converted = convert(source, "ddc", leaf_side=4)
        assert np.array_equal(converted.to_dense(), data)
        # Conversion never materialised the domain.
        assert converted.memory_cells() < data.size / 10

    def test_unknown_target_rejected(self, rng):
        original = build_method("naive", rng.integers(0, 3, size=(4, 4)))
        with pytest.raises(UnknownMethodError):
            convert(original, "mythical-tree")

    def test_float_dtype_preserved(self):
        data = np.full((4, 4), 0.25)
        converted = convert(build_method("ps", data), "ddc")
        assert converted.dtype == np.float64
        assert converted.total() == pytest.approx(4.0)

    def test_three_dimensional(self, rng):
        data = rng.integers(0, 5, size=(5, 6, 7))
        converted = convert(build_method("fenwick", data), "ddc")
        assert np.array_equal(converted.to_dense(), data)


class TestRebuild:
    def test_releveling(self, rng):
        data = rng.integers(0, 9, size=(32, 32))
        cube = DynamicDataCube.from_array(data, leaf_side=2, bc_fanout=4)
        relevelled = rebuild(cube, leaf_side=16)
        assert relevelled.leaf_side == 16
        assert relevelled.bc_fanout == 4  # carried over
        assert np.array_equal(relevelled.to_dense(), data)
        relevelled.validate()

    def test_secondary_swap(self, rng):
        data = rng.integers(0, 9, size=(16, 16))
        cube = DynamicDataCube.from_array(data)
        swapped = rebuild(cube, secondary_kind="fenwick")
        assert swapped.secondary_kind == "fenwick"
        assert np.array_equal(swapped.to_dense(), data)

    def test_rebuild_keeps_class(self, rng):
        from repro.core.basic_ddc import BasicDynamicDataCube

        data = rng.integers(0, 9, size=(8, 8))
        basic = BasicDynamicDataCube.from_array(data)
        rebuilt = rebuild(basic, leaf_side=4)
        assert isinstance(rebuilt, BasicDynamicDataCube)
        assert np.array_equal(rebuilt.to_dense(), data)
