"""Tests for the disk-resident Dynamic Data Cube."""

from __future__ import annotations

import numpy as np
import pytest

from repro.methods import NaiveArray
from repro.storage import DiskDynamicDataCube, PageFile
from repro.storage.pagefile import PageFileError


@pytest.fixture
def pages(tmp_path):
    with PageFile(tmp_path / "cube.pf", page_size=512) as handle:
        yield handle


class TestConstruction:
    def test_empty_cube(self, pages):
        cube = DiskDynamicDataCube((16, 16), pages)
        assert cube.total() == 0
        assert cube.prefix_sum((15, 15)) == 0
        assert cube.get((3, 3)) == 0

    def test_three_dims_rejected(self, pages):
        with pytest.raises(PageFileError):
            DiskDynamicDataCube((8, 8, 8), pages)

    def test_unsupported_dtype(self, pages):
        with pytest.raises(ValueError):
            DiskDynamicDataCube((8, 8), pages, dtype=np.int32)

    def test_leaf_side_must_fit_page(self, tmp_path):
        with PageFile(tmp_path / "tiny.pf", page_size=64) as tiny:
            with pytest.raises(PageFileError):
                DiskDynamicDataCube((64, 64), tiny, leaf_side=8)

    def test_leaf_side_power_of_two(self, pages):
        with pytest.raises(ValueError):
            DiskDynamicDataCube((8, 8), pages, leaf_side=3)


class TestEquivalenceWithOracle:
    @pytest.mark.parametrize("shape", [(16,), (23, 17), (64, 64)])
    def test_random_lifecycle(self, pages, shape, rng):
        cube = DiskDynamicDataCube(shape, pages)
        oracle = NaiveArray(shape)
        for _ in range(300):
            cell = tuple(int(rng.integers(0, s)) for s in shape)
            delta = int(rng.integers(-5, 6))
            cube.add(cell, delta)
            oracle.add(cell, delta)
        for _ in range(60):
            low = tuple(int(rng.integers(0, s)) for s in shape)
            high = tuple(int(rng.integers(lo, s)) for lo, s in zip(low, shape))
            assert cube.range_sum(low, high) == oracle.range_sum(low, high)
        assert cube.total() == oracle.total()

    def test_set_semantics(self, pages):
        cube = DiskDynamicDataCube((8, 8), pages)
        cube.set((2, 3), 10)
        cube.set((2, 3), 4)
        assert cube.get((2, 3)) == 4
        assert cube.total() == 4

    def test_float_cube(self, pages):
        cube = DiskDynamicDataCube((8, 8), pages, dtype=np.float64)
        cube.add((1, 1), 0.5)
        cube.add((5, 6), 0.25)
        assert cube.prefix_sum((7, 7)) == pytest.approx(0.75)

    def test_one_dimensional(self, pages, rng):
        cube = DiskDynamicDataCube((50,), pages)
        oracle = NaiveArray((50,))
        for _ in range(100):
            cell = (int(rng.integers(0, 50)),)
            delta = int(rng.integers(-4, 5))
            cube.add(cell, delta)
            oracle.add(cell, delta)
        for probe in range(0, 50, 7):
            assert cube.prefix_sum((probe,)) == oracle.prefix_sum((probe,))

    def test_larger_leaf_blocks(self, pages, rng):
        cube = DiskDynamicDataCube((32, 32), pages, leaf_side=4)
        oracle = NaiveArray((32, 32))
        for _ in range(150):
            cell = tuple(int(rng.integers(0, 32)) for _ in range(2))
            delta = int(rng.integers(-4, 5))
            cube.add(cell, delta)
            oracle.add(cell, delta)
        assert cube.prefix_sum((31, 31)) == oracle.prefix_sum((31, 31))
        assert np.array_equal(cube.to_dense(), oracle.to_dense())


class TestPersistence:
    def test_reopen(self, tmp_path, rng):
        path = tmp_path / "persist.pf"
        oracle = NaiveArray((20, 20))
        with PageFile(path, page_size=512) as pages:
            cube = DiskDynamicDataCube((20, 20), pages)
            for _ in range(120):
                cell = tuple(int(rng.integers(0, 20)) for _ in range(2))
                delta = int(rng.integers(1, 9))
                cube.add(cell, delta)
                oracle.add(cell, delta)
            meta = cube.meta_page
            cube.flush()
        with PageFile(path, page_size=512) as pages:
            cube = DiskDynamicDataCube((20, 20), pages, meta_page=meta)
            assert cube.total() == oracle.total()
            for _ in range(25):
                low = tuple(int(rng.integers(0, 20)) for _ in range(2))
                high = tuple(int(rng.integers(lo, 20)) for lo in low)
                assert cube.range_sum(low, high) == oracle.range_sum(low, high)
            # Updates continue to work after reopen.
            cube.add((0, 0), 7)
            assert cube.total() == oracle.total() + 7

    def test_dims_mismatch_on_reopen(self, tmp_path):
        path = tmp_path / "mismatch.pf"
        with PageFile(path, page_size=512) as pages:
            cube = DiskDynamicDataCube((8, 8), pages)
            cube.add((1, 1), 1)
            meta = cube.meta_page
            cube.flush()
        with PageFile(path, page_size=512) as pages:
            with pytest.raises(PageFileError):
                DiskDynamicDataCube((8,), pages, meta_page=meta)


class TestIoBehaviour:
    def test_tiny_caches_still_correct(self, pages, rng):
        cube = DiskDynamicDataCube((32, 32), pages, node_cache=2, tree_cache=1)
        oracle = NaiveArray((32, 32))
        for _ in range(150):
            cell = tuple(int(rng.integers(0, 32)) for _ in range(2))
            delta = int(rng.integers(1, 6))
            cube.add(cell, delta)
            oracle.add(cell, delta)
        for _ in range(30):
            low = tuple(int(rng.integers(0, 32)) for _ in range(2))
            high = tuple(int(rng.integers(lo, 32)) for lo in low)
            assert cube.range_sum(low, high) == oracle.range_sum(low, high)

    def test_update_io_far_below_cube_size(self, pages):
        n = 128
        cube = DiskDynamicDataCube((n, n), pages)
        cube.add((0, 0), 1)
        cube.flush()
        pages.stats.reset()
        cube.add((0, 0), 1)
        cube.flush()
        physical = pages.stats.reads + pages.stats.writes
        # The paper's point survives the disk: one update touches tens
        # of pages, not the n^2 = 16,384 cells PS would rewrite.
        assert physical < 200

    def test_bigger_cache_reduces_reads(self, tmp_path, rng):
        cells = [
            (int(rng.integers(0, 64)), int(rng.integers(0, 64))) for _ in range(300)
        ]
        reads = {}
        for node_cache in (2, 512):
            with PageFile(tmp_path / f"nc{node_cache}.pf", page_size=512) as pages:
                cube = DiskDynamicDataCube((64, 64), pages, node_cache=node_cache)
                for cell in cells:
                    cube.add(cell, 1)
                cube.flush()
                pages.stats.reset()
                for cell in cells[:100]:
                    cube.prefix_sum(cell)
                reads[node_cache] = pages.stats.reads
        assert reads[512] < reads[2]
