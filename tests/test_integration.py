"""Integration tests: the paper's claims exercised end-to-end.

These tests measure real operation counts on real structures and check
the *shape* of the paper's comparisons — who wins, how costs scale —
rather than unit-level behaviour.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro import (
    BasicDynamicDataCube,
    DynamicDataCube,
    GrowableCube,
)
from repro.methods import FenwickCube, PrefixSumCube, RelativePrefixSumCube
from repro.olap import CubeSchema, DataCube, IntegerDimension
from repro.workloads import clustered, dense_uniform, growth_stream, random_updates


def measured_update_ops(method, updates) -> float:
    """Mean logical cell ops per update over a workload."""
    method.stats.reset()
    for update in updates:
        method.add(update.cell, update.delta)
    return method.stats.total_cell_ops / len(updates)


class TestUpdateCostOrdering:
    """The Figure 1 ordering, measured: PS > RPS > Basic DDC > DDC."""

    def test_worst_case_update_ordering(self):
        n = 64
        shape = (n, n)
        array = dense_uniform(shape, seed=1)
        ps = PrefixSumCube.from_array(array)
        rps = RelativePrefixSumCube.from_array(array)
        basic = BasicDynamicDataCube.from_array(array)
        ddc = DynamicDataCube.from_array(array)

        costs = {}
        for method in (ps, rps, basic, ddc):
            method.stats.reset()
            method.add((0, 0), 1)
            costs[method.name] = method.stats.cell_writes

        assert costs["ps"] == n * n
        assert costs["rps"] < costs["ps"] / 4
        assert costs["basic-ddc"] < costs["rps"]
        assert costs["ddc"] < costs["basic-ddc"]

    def test_average_update_ordering(self):
        shape = (64, 64)
        array = dense_uniform(shape, seed=2)
        updates = random_updates(shape, 50, seed=3)
        costs = {
            cls.name: measured_update_ops(cls.from_array(array), updates)
            for cls in (PrefixSumCube, RelativePrefixSumCube, DynamicDataCube)
        }
        assert costs["ps"] > costs["rps"] > costs["ddc"]


class TestUpdateCostScaling:
    """Theorem 2's shape: DDC update cost grows polylogarithmically."""

    def test_ddc_update_growth_is_sublinear(self):
        costs = []
        for n in (32, 128, 512):
            cube = DynamicDataCube((n, n))
            cube.add((0, 0), 1)  # allocate path
            cube.stats.reset()
            cube.add((0, 0), 1)
            costs.append(cube.stats.total_cell_ops)
        # Quadrupling n must grow cost far slower than linearly in n.
        assert costs[1] / costs[0] < 4
        assert costs[2] / costs[1] < 4

    def test_ps_update_growth_is_quadratic(self):
        costs = []
        for n in (16, 32, 64):
            ps = PrefixSumCube((n, n))
            ps.stats.reset()
            ps.add((0, 0), 1)
            costs.append(ps.stats.cell_writes)
        assert costs[1] / costs[0] == 4
        assert costs[2] / costs[1] == 4

    def test_rps_update_growth_is_linearish(self):
        """RPS worst-case update scales like n^(d/2) = n in 2-d."""
        costs = []
        for n in (64, 256):
            rps = RelativePrefixSumCube((n, n))
            rps.stats.reset()
            rps.add((0, 0), 1)
            costs.append(rps.stats.cell_writes)
        ratio = costs[1] / costs[0]
        assert 2.5 < ratio < 6  # ~4x for a 4x n increase

    def test_basic_ddc_update_growth_is_linear_2d(self):
        """Section 3.3: Basic DDC worst-case update is O(n^(d-1)) = O(n)."""
        costs = []
        for n in (64, 256):
            basic = BasicDynamicDataCube((n, n))
            basic.add((0, 0), 1)
            basic.stats.reset()
            basic.add((0, 0), 1)
            costs.append(basic.stats.total_cell_ops)
        ratio = costs[1] / costs[0]
        assert 2.5 < ratio < 6


class TestQueryCostShape:
    def test_ddc_query_cost_polylogarithmic(self):
        ops = []
        for n in (64, 512):
            array = dense_uniform((n, n), seed=4)
            cube = DynamicDataCube.from_array(array)
            cube.stats.reset()
            cube.prefix_sum((n - 1, n - 1))
            ops.append(cube.stats.total_cell_ops)
        # 8x larger n: at most ~ (log 512 / log 64)^2 = 2.25x the cost,
        # plus constants; certainly below 4x.
        assert ops[1] / ops[0] < 4

    def test_ps_query_constant(self):
        for n in (16, 128):
            ps = PrefixSumCube.from_array(dense_uniform((n, n), seed=5))
            ps.stats.reset()
            ps.range_sum((1, 1), (n - 2, n - 2))
            assert ps.stats.cell_reads == 4

    def test_query_update_balance(self):
        """The DDC's point: neither operation dominates the other."""
        array = dense_uniform((256, 256), seed=6)
        cube = DynamicDataCube.from_array(array)
        cube.stats.reset()
        cube.prefix_sum((200, 123))
        query_ops = cube.stats.total_cell_ops
        cube.stats.reset()
        cube.add((200, 123), 5)
        update_ops = cube.stats.total_cell_ops
        assert query_ops < 40 * update_ops
        assert update_ops < 40 * query_ops


class TestStorageClaims:
    def test_clustered_data_storage_advantage(self):
        """Section 5: DDC storage tracks population; PS/RPS pay the domain."""
        domain = (256, 256)
        data = clustered(domain, clusters=4, points_per_cluster=100, seed=7)
        ddc = DynamicDataCube.from_array(data)
        ps = PrefixSumCube.from_array(data)
        rps = RelativePrefixSumCube.from_array(data)
        assert ps.memory_cells() >= data.size
        assert rps.memory_cells() >= data.size
        assert ddc.memory_cells() < data.size  # only populated subtrees

    def test_dense_data_storage_overhead_bounded(self):
        data = dense_uniform((64, 64), seed=8)
        ddc = DynamicDataCube.from_array(data)
        # Tree overlays cost bookkeeping, but stay within a small factor.
        assert ddc.memory_cells() < 6 * data.size


class TestThreeDimensions:
    def test_ordering_holds_in_3d(self):
        shape = (16, 16, 16)
        array = dense_uniform(shape, seed=9)
        ps = PrefixSumCube.from_array(array)
        ddc = DynamicDataCube.from_array(array)
        ps.stats.reset()
        ps.add((0, 0, 0), 1)
        ddc.stats.reset()
        ddc.add((0, 0, 0), 1)
        assert ps.stats.cell_writes == 16**3
        assert ddc.stats.total_cell_ops < ps.stats.cell_writes / 10
        assert ddc.prefix_sum((15, 15, 15)) == ps.prefix_sum((15, 15, 15))

    def test_fenwick_and_ddc_same_complexity_class(self):
        shape = (32, 32, 32)
        array = dense_uniform(shape, seed=10)
        fenwick = FenwickCube.from_array(array)
        ddc = DynamicDataCube.from_array(array)
        fenwick.stats.reset()
        fenwick.add((0, 0, 0), 1)
        ddc.stats.reset()
        ddc.add((0, 0, 0), 1)
        # Both polylog; within a couple orders of magnitude of each other
        # and both far below the n^d = 32768 PS would pay.
        assert fenwick.stats.total_cell_ops < 1000
        assert ddc.stats.total_cell_ops < 2000


class TestEndToEndScenarios:
    def test_sales_analysis_scenario(self):
        """The introduction's example, at small scale, on the DDC."""
        schema = CubeSchema(
            [IntegerDimension("age", 18, 90), IntegerDimension("day", 0, 364)],
            measure="sales",
        )
        cube = DataCube(schema, method="ddc")
        rng = np.random.default_rng(11)
        december = range(340, 365)
        for _ in range(500):
            cube.insert(
                {"age": int(rng.integers(18, 91)), "day": int(rng.integers(0, 365))},
                float(rng.integers(10, 500)),
            )
        cube.insert({"age": 45, "day": 342}, 120.0)
        result = cube.aggregate(age=(27, 45), day=(340, 364))
        assert result.count >= 1
        assert result.total >= 120.0
        assert result.average == result.total / result.count
        assert len(list(december)) == 25

    def test_star_catalog_scenario(self):
        """Section 5's astronomy example: grow as stars are discovered."""
        catalog = GrowableCube(dims=3, initial_side=8)
        total = 0
        for discovery in growth_stream(dims=3, points=400, seed=12):
            catalog.add(discovery.coordinate, discovery.value)
            total += discovery.value
        assert catalog.total() == total
        low, high = catalog.bounds
        assert catalog.range_sum(low, high) == total
        volume = math.prod(hi - lo + 1 for lo, hi in zip(low, high))
        assert catalog.memory_cells() < max(volume, 10_000)

    def test_whatif_interleaving(self):
        """Interactive what-if: interleaved updates and queries stay consistent."""
        shape = (64, 64)
        array = dense_uniform(shape, seed=13)
        ddc = DynamicDataCube.from_array(array)
        reference = array.copy()
        rng = np.random.default_rng(14)
        for _ in range(200):
            if rng.random() < 0.5:
                cell = tuple(int(rng.integers(0, 64)) for _ in range(2))
                delta = int(rng.integers(-20, 21))
                ddc.add(cell, delta)
                reference[cell] += delta
            else:
                low = tuple(int(rng.integers(0, 64)) for _ in range(2))
                high = tuple(int(rng.integers(lo, 64)) for lo in low)
                region = tuple(slice(lo, hi + 1) for lo, hi in zip(low, high))
                assert ddc.range_sum(low, high) == reference[region].sum()
