"""Property tests for the disk engines against in-memory oracles."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.keyed_bc_tree import KeyedBcTree
from repro.methods import NaiveArray
from repro.storage import DiskBcTree, DiskDynamicDataCube, PageFile


class TestDiskBcTreeProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        operations=st.lists(
            st.tuples(st.integers(-200, 200), st.integers(-9, 9)), max_size=60
        ),
        cache_pages=st.sampled_from([1, 3, 16]),
        page_size=st.sampled_from([128, 512]),
    )
    def test_matches_in_memory_tree(
        self, tmp_path_factory, operations, cache_pages, page_size
    ):
        tmp = tmp_path_factory.mktemp("disk")
        with PageFile(tmp / "t.pf", page_size=page_size) as pages:
            disk = DiskBcTree(pages, cache_pages=cache_pages)
            memory = KeyedBcTree()
            for key, delta in operations:
                disk.add(key, delta)
                memory.add(key, delta)
            assert disk.total() == memory.total()
            assert len(disk) == len(memory)
            for probe in range(-220, 221, 37):
                assert disk.prefix_sum(probe) == memory.prefix_sum(probe)
            assert list(disk.items()) == list(memory.items())
            disk.validate()

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 2**31))
    def test_flush_reopen_is_lossless(self, tmp_path_factory, seed):
        rng = np.random.default_rng(seed)
        tmp = tmp_path_factory.mktemp("disk")
        path = tmp / "t.pf"
        items = {}
        with PageFile(path, page_size=256) as pages:
            tree = DiskBcTree(pages, cache_pages=2)
            for _ in range(int(rng.integers(0, 80))):
                key = int(rng.integers(0, 500))
                delta = int(rng.integers(1, 9))
                tree.add(key, delta)
                items[key] = items.get(key, 0) + delta
            meta = tree.meta_page
            tree.flush()
        with PageFile(path, page_size=256) as pages:
            tree = DiskBcTree(pages, meta_page=meta)
            assert dict(tree.items()) == items
            tree.validate()


class TestDiskDdcProperties:
    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(0, 2**31),
        node_cache=st.sampled_from([2, 64]),
        leaf_side=st.sampled_from([2, 4]),
    )
    def test_matches_naive_oracle(self, tmp_path_factory, seed, node_cache, leaf_side):
        rng = np.random.default_rng(seed)
        shape = (int(rng.integers(2, 40)), int(rng.integers(2, 40)))
        tmp = tmp_path_factory.mktemp("ddc")
        with PageFile(tmp / "c.pf", page_size=512) as pages:
            cube = DiskDynamicDataCube(
                shape, pages, node_cache=node_cache, leaf_side=leaf_side
            )
            oracle = NaiveArray(shape)
            for _ in range(int(rng.integers(0, 80))):
                cell = tuple(int(rng.integers(0, s)) for s in shape)
                delta = int(rng.integers(-6, 7))
                cube.add(cell, delta)
                oracle.add(cell, delta)
            for _ in range(15):
                low = tuple(int(rng.integers(0, s)) for s in shape)
                high = tuple(int(rng.integers(lo, s)) for lo, s in zip(low, shape))
                assert cube.range_sum(low, high) == oracle.range_sum(low, high)
            assert cube.total() == oracle.total()
            assert np.array_equal(cube.to_dense(), oracle.to_dense())
