"""Tests for cross-process telemetry: shared-memory worker metric
shards, delta harvesting, trace grafting, the SLO watchdog, and the
unified export surface.

The load-bearing properties:

* a worker shard and its harvester agree on every slot offset by
  construction (one pickled layout), so merged values are exact;
* harvesting is delta-based and crash-safe — harvesting twice adds
  nothing, a SIGKILLed worker's last-published values are never lost,
  and a respawned worker resuming the same slots is never
  double-counted;
* worker spans returned in IPC acks graft into the parent trace as one
  tree spanning both sides of the process boundary;
* disabled observability stays allocation-free: NULL_OBS engines bind
  the shared null instrument and register no metric families.
"""

from __future__ import annotations

import pickle

import pytest

from repro.engine import ShardedEngine
from repro.exceptions import ConfigurationError
from repro.obs import ManualClock, MetricsRegistry, Observability, Tracer
from repro.obs import NULL_OBS
from repro.obs.export import export_unified, write_chrome_trace
from repro.obs.metrics import NULL_INSTRUMENT
from repro.obs.remote import (
    MetricsHarvester,
    RemoteMetricsLayout,
    WorkerMetricsShard,
    graft_spans,
    span_payload,
    worker_metrics_layout,
)
from repro.obs.slo import ErrorBudgetSlo, LatencySlo, SloWatchdog
from repro.obs.trace import Span
from repro.workloads import RangeQuery, read_write_stream

SHAPE = (18, 9)


def _replay(engine, events):
    for event in events:
        if isinstance(event, RangeQuery):
            engine.range_sum(event.low, event.high)
        else:
            engine.add(event.cell, event.delta)


def _counter_value(registry, name, **labels):
    family = registry.get(name)
    if family is None:
        return None
    for child_labels, child in family.samples():
        if all(child_labels.get(k) == v for k, v in labels.items()):
            return child.value
    return None


class TestLayout:
    def test_standard_layout_shape(self):
        layout = worker_metrics_layout()
        assert len(layout.entries) == 7
        kinds = [entry[0] for entry in layout.entries]
        assert kinds.count("histogram") == 3
        assert kinds.count("counter") == 3
        assert kinds.count("gauge") == 1
        # Offsets are dense: each entry starts where the previous ended.
        widths = [
            (len(entry[4]) + 3 if entry[0] == "histogram" else 1)
            for entry in layout.entries
        ]
        assert layout.slots == sum(widths)
        assert layout.offsets == tuple(
            sum(widths[:i]) for i in range(len(widths))
        )

    def test_pickle_roundtrip_preserves_offsets(self):
        layout = worker_metrics_layout()
        clone = pickle.loads(pickle.dumps(layout))
        assert clone.offsets == layout.offsets
        assert clone.slots == layout.slots
        assert clone.entries == layout.entries

    def test_locate_is_label_order_insensitive(self):
        layout = RemoteMetricsLayout(
            [("counter", "c_total", "help", (("a", "1"), ("b", "2")), None)]
        )
        assert layout.locate("c_total", {"b": "2", "a": "1"}) == 0
        with pytest.raises(ConfigurationError):
            layout.locate("c_total", {"a": "9"})

    def test_invalid_layouts_raise(self):
        with pytest.raises(ConfigurationError):
            RemoteMetricsLayout([])
        with pytest.raises(ConfigurationError):
            RemoteMetricsLayout([("timer", "t", "help", (), None)])
        with pytest.raises(ConfigurationError):
            RemoteMetricsLayout([("histogram", "h", "help", (), (2.0, 1.0))])
        with pytest.raises(ConfigurationError):
            RemoteMetricsLayout(
                [
                    ("counter", "c_total", "help", (), None),
                    ("counter", "c_total", "help", (), None),
                ]
            )


@pytest.fixture
def small_layout():
    return RemoteMetricsLayout(
        [
            ("counter", "ops_total", "ops", (("op", "read"),), None),
            ("gauge", "ready", "ready flag", (), None),
            ("histogram", "lat_seconds", "latency", (), (0.1, 1.0)),
        ]
    )


class TestShardAndHarvester:
    """In-process shard + harvester over real shared-memory segments."""

    def test_merge_under_worker_labels(self, small_layout):
        harvester = MetricsHarvester(small_layout, workers=2)
        registry = MetricsRegistry()
        try:
            shard0 = WorkerMetricsShard(*harvester.worker_telemetry(0))
            shard1 = WorkerMetricsShard(*harvester.worker_telemetry(1))
            shard0.counter("ops_total", op="read").inc(3)
            shard1.counter("ops_total", op="read").inc(5)
            shard0.gauge("ready").set(1.0)
            shard0.histogram("lat_seconds").observe(0.05)
            shard0.histogram("lat_seconds").observe(2.0)
            summary = harvester.harvest(registry)
            assert summary["workers"] == 2
            assert summary["torn_snapshots"] == 0
            assert summary["updates_published"] == 5
            assert _counter_value(registry, "ops_total", worker="0") == 3
            assert _counter_value(registry, "ops_total", worker="1") == 5
            hist = registry.get("lat_seconds").labels(worker="0")
            assert hist.count == 2
            assert hist.sum == pytest.approx(2.05)
            assert hist.counts == [1, 0, 1]  # <=0.1, <=1.0, +Inf
            shard0.close()
            shard1.close()
        finally:
            harvester.destroy()

    def test_harvest_twice_adds_nothing(self, small_layout):
        harvester = MetricsHarvester(small_layout, workers=1)
        registry = MetricsRegistry()
        try:
            shard = WorkerMetricsShard(*harvester.worker_telemetry(0))
            shard.counter("ops_total", op="read").inc(4)
            harvester.harvest(registry)
            harvester.harvest(registry)
            harvester.harvest(registry)
            assert _counter_value(registry, "ops_total", worker="0") == 4
            # New updates merge exactly once on the next harvest.
            shard.counter("ops_total", op="read").inc(2)
            harvester.harvest(registry)
            assert _counter_value(registry, "ops_total", worker="0") == 6
            shard.close()
        finally:
            harvester.destroy()

    def test_reattach_resumes_same_slots_without_double_count(
        self, small_layout
    ):
        """A respawned worker attaches to the same segment and keeps
        incrementing; delta merging never replays the old total."""
        harvester = MetricsHarvester(small_layout, workers=1)
        registry = MetricsRegistry()
        try:
            shard = WorkerMetricsShard(*harvester.worker_telemetry(0))
            shard.counter("ops_total", op="read").inc(7)
            shard.close()  # worker dies; values still mapped
            harvester.harvest(registry)
            assert _counter_value(registry, "ops_total", worker="0") == 7
            respawned = WorkerMetricsShard(*harvester.worker_telemetry(0))
            respawned.counter("ops_total", op="read").inc(1)
            harvester.harvest(registry)
            assert _counter_value(registry, "ops_total", worker="0") == 8
            respawned.close()
        finally:
            harvester.destroy()

    def test_torn_seqlock_is_accepted_and_counted(self, small_layout):
        """A worker SIGKILLed mid-update leaves ``seq`` odd forever; the
        harvester accepts the torn snapshot after bounded retries."""
        harvester = MetricsHarvester(small_layout, workers=1)
        registry = MetricsRegistry()
        try:
            shard = WorkerMetricsShard(*harvester.worker_telemetry(0))
            shard.counter("ops_total", op="read").inc(2)
            shard._begin()  # die mid-update: seq stays odd
            summary = harvester.harvest(registry)
            assert summary["torn_snapshots"] == 1
            assert harvester.torn_snapshots == 1
            assert _counter_value(registry, "ops_total", worker="0") == 2
            shard.close()
        finally:
            harvester.destroy()

    def test_destroy_is_idempotent(self, small_layout):
        harvester = MetricsHarvester(small_layout, workers=1)
        harvester.destroy()
        harvester.destroy()
        with pytest.raises(ConfigurationError):
            MetricsHarvester(small_layout, workers=0)

    def test_shard_handle_kind_mismatch_raises(self, small_layout):
        harvester = MetricsHarvester(small_layout, workers=1)
        try:
            shard = WorkerMetricsShard(*harvester.worker_telemetry(0))
            with pytest.raises(ConfigurationError):
                shard.gauge("ops_total", op="read")
            with pytest.raises(ConfigurationError):
                shard.counter("ops_total", op="read").inc(-1)
            shard.close()
        finally:
            harvester.destroy()


class TestTraceGraft:
    def test_grafted_spans_rebase_and_join_parent_trace(self):
        clock = ManualClock()
        tracer = Tracer(clock=clock)
        payload = [
            span_payload(
                "worker.query_many",
                0.0,
                0.5,
                {"worker": 1},
                [span_payload("worker.gather", 0.1, 0.4, {"queries": 8})],
            )
        ]
        with tracer.span("shard.range_sum") as parent:
            clock.advance(1.0)
            grafted = graft_spans(tracer, parent, payload, base=parent.start)
        assert grafted == 2
        outer = parent.children[0]
        assert outer.name == "worker.query_many"
        assert outer.trace_id == parent.trace_id
        assert outer.span_id != parent.span_id
        assert outer.start == pytest.approx(parent.start)
        assert outer.end == pytest.approx(parent.start + 0.5)
        assert outer.attributes == {"worker": 1}
        inner = outer.children[0]
        assert inner.name == "worker.gather"
        assert inner.start == pytest.approx(parent.start + 0.1)
        assert inner.trace_id == parent.trace_id

    def test_unsampled_parent_grafts_nothing(self):
        tracer = Tracer(clock=ManualClock(), sample_every=2)
        payload = [span_payload("worker.query_many", 0.0, 0.1)]
        with tracer.span("first"):
            pass  # sampled
        with tracer.span("second") as unsampled:
            assert not isinstance(unsampled, Span)
            assert graft_spans(tracer, unsampled, payload, base=0.0) == 0


class TestDisabledObsStaysDark:
    def test_null_obs_engine_binds_null_instrument(self):
        engine = ShardedEngine(SHAPE, shards=2)
        try:
            assert engine.obs is NULL_OBS
            assert engine._obs_request_seconds is NULL_INSTRUMENT
            assert engine._obs_cache_lookups is NULL_INSTRUMENT
            assert engine._obs_degraded is NULL_INSTRUMENT
            # Nothing registered: the shared registry holds no
            # engine-specific families for a dark engine.
            assert NULL_OBS.metrics.get("repro_engine_request_seconds") is None
        finally:
            engine.close()

    def test_null_obs_process_pool_has_no_harvester(self):
        engine = ShardedEngine(SHAPE, shards=2, executor="process")
        try:
            assert engine.harvest_worker_metrics() is None
            info = engine.pool_info()
            assert info["telemetry"] is None
        finally:
            engine.close()

    def test_parent_only_mode_skips_worker_segments(self):
        obs = Observability(remote_worker_metrics=False)
        engine = ShardedEngine(
            SHAPE, shards=2, executor="process", obs=obs, ipc_reads=True
        )
        try:
            _replay(engine, read_write_stream(SHAPE, 30, seed=3))
            engine.process_pool.flush()
            assert engine.harvest_worker_metrics() is None
            assert obs.metrics.get("repro_worker_ops_total") is None
        finally:
            engine.close()


class TestProcessHarvestAcceptance:
    """End-to-end: worker metrics and spans cross the process boundary."""

    def test_harvest_surfaces_worker_families(self):
        obs = Observability()
        engine = ShardedEngine(
            SHAPE, shards=2, executor="process", obs=obs, ipc_reads=True
        )
        try:
            assert engine.executor_kind == "process"
            _replay(engine, read_write_stream(SHAPE, 60, seed=5))
            engine.process_pool.flush()
            summary = engine.harvest_worker_metrics()
            assert summary is not None
            assert summary["updates_published"] > 0
            for name in (
                "repro_worker_gather_seconds",
                "repro_worker_apply_seconds",
                "repro_worker_ops_total",
            ):
                family = obs.metrics.get(name)
                assert family is not None, name
                workers = {labels["worker"] for labels, _ in family.samples()}
                assert workers, name
            prom = obs.metrics.render_prometheus()
            assert 'repro_worker_ops_total{op="query_many",worker=' in prom
        finally:
            engine.close()

    def test_worker_churn_never_loses_or_double_counts(self):
        """SIGKILL mid-soak: ops published before the kill survive the
        corpse, and the respawned worker's counts stack on top."""
        obs = Observability()
        engine = ShardedEngine(
            SHAPE, shards=2, executor="process", obs=obs, ipc_reads=True
        )
        try:
            pool = engine.process_pool
            _replay(engine, read_write_stream(SHAPE, 40, seed=7))
            pool.flush()
            engine.harvest_worker_metrics()
            before = _counter_value(
                obs.metrics, "repro_worker_ops_total", op="query_many"
            )
            assert before is not None and before > 0
            # Idempotence under churn: nothing new -> nothing merged.
            engine.harvest_worker_metrics()
            assert (
                _counter_value(
                    obs.metrics, "repro_worker_ops_total", op="query_many"
                )
                == before
            )
            # More traffic, then SIGKILL without harvesting first: the
            # segment outlives the corpse, so those ops are not lost.
            _replay(engine, read_write_stream(SHAPE, 40, seed=8))
            pool.flush()
            assert pool.kill_worker(0)
            engine.harvest_worker_metrics()
            after_kill = _counter_value(
                obs.metrics, "repro_worker_ops_total", op="query_many"
            )
            assert after_kill > before
            # Respawn (next op revives the lane) and keep counting: the
            # worker resumes the same slots; totals only move forward.
            _replay(engine, read_write_stream(SHAPE, 40, seed=9))
            pool.flush()
            engine.harvest_worker_metrics()
            final = _counter_value(
                obs.metrics, "repro_worker_ops_total", op="query_many"
            )
            assert final > after_kill
            info = pool.pool_info()
            assert info["restarts"] >= 1
            assert info["telemetry"]["harvests"] >= 3
        finally:
            engine.close()

    def test_worker_spans_graft_into_parent_tree(self):
        obs = Observability()
        engine = ShardedEngine(
            SHAPE, shards=2, executor="process", obs=obs, ipc_reads=True
        )
        try:
            engine.range_sum((0, 0), (17, 8))
            roots = obs.tracer.finished_roots()
            assert roots
            spans = [span for root in roots for span in root.walk()]
            worker_spans = [
                span for span in spans if span.name.startswith("worker.")
            ]
            assert worker_spans, [span.name for span in spans]
            assert {span.name for span in worker_spans} >= {
                "worker.query_many"
            }
            for span in worker_spans:
                assert span.trace_id == roots[0].trace_id
        finally:
            engine.close()

    def test_slow_log_attributes_executor_and_workers(self):
        obs = Observability(slow_query_seconds=0.0)
        engine = ShardedEngine(
            SHAPE, shards=2, executor="process", obs=obs, ipc_reads=True
        )
        try:
            engine.range_sum((0, 0), (17, 8))
            records = obs.slow_log.slowest(4)
            assert records
            record = records[0]
            assert record.attributes["executor"] == "process"
            assert record.workers
        finally:
            engine.close()


class TestSloWatchdog:
    def test_vacuous_pass_with_no_data(self):
        obs = Observability()
        watchdog = SloWatchdog(obs)
        statuses = watchdog.check()
        assert watchdog.healthy
        assert all(status.ok for status in statuses)
        doc = watchdog.healthz()
        assert doc["status"] == "ok"
        assert doc["checks_run"] == 1

    def test_latency_violation_flips_health(self):
        obs = Observability()
        family = obs.metrics.histogram(
            "repro_engine_request_seconds", "req", labels=("op",)
        )
        family.labels(op="range_sum").observe(5.0)
        watchdog = SloWatchdog(
            obs,
            rules=[
                LatencySlo(
                    "p99", "repro_engine_request_seconds", 0.99, 0.001
                )
            ],
        )
        watchdog.check()
        assert not watchdog.healthy
        assert watchdog.healthz()["status"] == "degraded"
        assert "FAIL" in watchdog.render()

    def test_error_budget_and_harvest_hook(self):
        obs = Observability()
        calls = []
        errors = obs.metrics.counter("errs_total", "errors")
        total = obs.metrics.histogram("reqs_seconds", "requests")
        for _ in range(10):
            total.observe(0.001)
        errors.inc(5)
        watchdog = SloWatchdog(
            obs,
            rules=[
                ErrorBudgetSlo("budget", "errs_total", "reqs_seconds", 0.01)
            ],
            harvest=lambda: calls.append(1),
        )
        watchdog.check()
        assert calls == [1]
        assert not watchdog.healthy
        with pytest.raises(ConfigurationError):
            ErrorBudgetSlo("bad", "e", "t", 1.5)
        with pytest.raises(ConfigurationError):
            LatencySlo("bad", "m", 1.5, 0.1)


class TestUnifiedExport:
    def test_export_unified_snapshot(self, tmp_path):
        obs = Observability()
        engine = ShardedEngine(
            SHAPE, shards=2, executor="process", obs=obs, ipc_reads=True
        )
        try:
            _replay(engine, read_write_stream(SHAPE, 40, seed=11))
            engine.process_pool.flush()
            watchdog = SloWatchdog(obs, harvest=engine.harvest_worker_metrics)
            doc = export_unified(obs, engine=engine, slo=watchdog)
            assert "repro_worker_ops_total" in doc["prometheus"]
            names = {family["name"] for family in doc["metrics"]}
            assert "repro_engine_request_seconds" in names
            assert doc["chrome_trace"]["traceEvents"]
            assert doc["harvest"]["workers"] == engine.pool_info()["workers"]
            assert doc["pool"]["alive"] >= 1
            assert doc["slo"]["status"] in ("ok", "degraded")
            assert watchdog.checks == 1
        finally:
            engine.close()

    def test_write_chrome_trace_is_valid_json(self, tmp_path):
        import json

        clock = ManualClock()
        tracer = Tracer(clock=clock)
        with tracer.span("outer"):
            clock.advance(0.5)
            with tracer.span("inner", worker=0):
                clock.advance(0.1)
        path = tmp_path / "trace.json"
        written = write_chrome_trace(str(path), tracer.finished_roots())
        assert written == 2
        doc = json.loads(path.read_text())
        names = {
            event["name"]
            for event in doc["traceEvents"]
            if event["ph"] == "X"
        }
        assert names == {"outer", "inner"}
        durations = [
            event["dur"]
            for event in doc["traceEvents"]
            if event["ph"] == "X"
        ]
        assert all(dur > 0 for dur in durations)


class TestCliSurface:
    def test_top_once_exits_healthy(self, capsys):
        from repro.cli import main

        assert (
            main(
                [
                    "top",
                    "--shape", "16", "16",
                    "--shards", "2",
                    "--events", "30",
                    "--executor", "process",
                    "--ipc-reads",
                    "--once",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "repro top" in out
        assert "slo: HEALTHY" in out
        assert "worker" in out

    def test_metrics_cli_shows_worker_families(self, capsys):
        from repro.cli import main

        assert (
            main(
                [
                    "metrics",
                    "--shape", "16", "16",
                    "--shards", "2",
                    "--events", "30",
                    "--executor", "process",
                    "--ipc-reads",
                    "--format", "prom",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "repro_worker_gather_seconds" in out
        assert "repro_worker_apply_seconds" in out
        assert "repro_worker_ops_total" in out
