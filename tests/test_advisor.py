"""Tests for the workload advisor."""

from __future__ import annotations

import pytest

from repro.advisor import Recommendation, WorkloadProfile, expected_operation_cost, recommend


class TestWorkloadProfile:
    def test_validation(self):
        with pytest.raises(ValueError):
            WorkloadProfile(n=1, d=2)
        with pytest.raises(ValueError):
            WorkloadProfile(n=100, d=0)
        with pytest.raises(ValueError):
            WorkloadProfile(n=100, d=2, query_fraction=1.5)
        with pytest.raises(ValueError):
            WorkloadProfile(n=100, d=2, updates_per_batch=0)
        with pytest.raises(ValueError):
            WorkloadProfile(n=100, d=2, density=0.0)


class TestExpectedCost:
    def test_read_only_ps_is_constant(self):
        profile = WorkloadProfile(n=10**6, d=4, query_fraction=1.0)
        assert expected_operation_cost(profile, "ps") == 2**4

    def test_write_only_naive_is_one(self):
        profile = WorkloadProfile(n=10**6, d=4, query_fraction=0.0)
        assert expected_operation_cost(profile, "naive") == 1.0

    def test_batching_amortises_ps(self):
        interactive = WorkloadProfile(n=1000, d=2, query_fraction=0.0)
        batched = WorkloadProfile(
            n=1000, d=2, query_fraction=0.0, updates_per_batch=1000
        )
        assert expected_operation_cost(batched, "ps") == pytest.approx(
            expected_operation_cost(interactive, "ps") / 1000
        )


class TestRecommend:
    def test_read_only_dense_picks_prefix_family(self):
        profile = WorkloadProfile(n=10**4, d=3, query_fraction=1.0)
        result = recommend(profile)
        assert result.method in ("ps", "rps")

    def test_write_only_picks_naive(self):
        profile = WorkloadProfile(n=10**4, d=3, query_fraction=0.0)
        assert recommend(profile).method == "naive"

    def test_balanced_large_cube_picks_ddc(self):
        profile = WorkloadProfile(n=10**5, d=3, query_fraction=0.5)
        result = recommend(profile)
        assert result.method == "ddc"
        assert any("mix" in reason for reason in result.reasons)

    def test_growth_forces_ddc_family(self):
        profile = WorkloadProfile(
            n=10**4, d=2, query_fraction=1.0, needs_growth=True
        )
        result = recommend(profile)
        assert result.method in ("ddc", "basic-ddc")
        assert any("grow" in reason for reason in result.reasons)

    def test_sparsity_forces_ddc_family(self):
        profile = WorkloadProfile(n=10**4, d=2, query_fraction=1.0, density=0.001)
        result = recommend(profile)
        assert result.method in ("ddc", "basic-ddc")
        assert any("sparse" in reason for reason in result.reasons)

    def test_heavy_batching_rehabilitates_prefix_sums(self):
        """With massive batches, PS's amortised update is workable again."""
        profile = WorkloadProfile(
            n=100,
            d=2,
            query_fraction=0.9,
            updates_per_batch=100_000,
        )
        result = recommend(profile)
        assert result.method in ("ps", "rps")

    def test_costs_reported_for_all_candidates(self):
        profile = WorkloadProfile(n=1000, d=2)
        result = recommend(profile)
        assert set(result.per_method_costs) == {
            "naive",
            "ps",
            "rps",
            "basic-ddc",
            "ddc",
        }
        assert result.expected_op_cost == min(result.per_method_costs.values())

    def test_recommendation_is_dataclass(self):
        result = recommend(WorkloadProfile(n=100, d=2))
        assert isinstance(result, Recommendation)
        assert result.reasons
