"""Tests for rollup / pivot / top-k and GrowableCube.compact."""

from __future__ import annotations

import datetime

import numpy as np
import pytest

from repro import GrowableCube
from repro.exceptions import SchemaError
from repro.olap import (
    CategoricalDimension,
    CubeSchema,
    DataCube,
    DateDimension,
    IntegerDimension,
)

JAN1 = datetime.date(2025, 1, 1)


@pytest.fixture
def date_dim():
    return DateDimension("date", JAN1, 365)


@pytest.fixture
def cube(date_dim):
    schema = CubeSchema(
        [
            IntegerDimension("age", 18, 90),
            date_dim,
            CategoricalDimension("region", ["west", "east"]),
        ],
        measure="sales",
    )
    cube = DataCube(schema, method="ddc")
    samples = [
        (30, datetime.date(2025, 1, 10), "west", 10.0),
        (30, datetime.date(2025, 2, 10), "west", 20.0),
        (55, datetime.date(2025, 5, 10), "east", 40.0),
        (70, datetime.date(2025, 11, 10), "east", 80.0),
    ]
    for age, date, region, amount in samples:
        cube.insert({"age": age, "date": date, "region": region}, amount)
    return cube


class TestBucketGenerators:
    def test_months_cover_year(self, date_dim):
        buckets = date_dim.months()
        assert len(buckets) == 12
        assert buckets[0][0] == "2025-01"
        assert buckets[-1][0] == "2025-12"
        assert buckets[0][1] == (JAN1, datetime.date(2025, 1, 31))

    def test_quarters_cover_year(self, date_dim):
        buckets = date_dim.quarters()
        assert [label for label, _ in buckets] == [
            "2025-Q1",
            "2025-Q2",
            "2025-Q3",
            "2025-Q4",
        ]

    def test_partial_domain_clipped(self):
        partial = DateDimension("date", datetime.date(2025, 11, 15), 60)
        months = partial.months()
        assert months[0][0] == "2025-11"
        assert months[0][1][0] == datetime.date(2025, 11, 15)
        assert months[-1][0] == "2026-01"

    def test_quarters_span_year_boundary(self):
        spanning = DateDimension("date", datetime.date(2025, 12, 1), 90)
        labels = [label for label, _ in spanning.quarters()]
        assert labels == ["2025-Q4", "2026-Q1"]


class TestRollup:
    def test_quarterly_rollup(self, cube, date_dim):
        rolled = cube.rollup("date", date_dim.quarters())
        assert [(label, float(total)) for label, total in rolled] == [
            ("2025-Q1", 30.0),
            ("2025-Q2", 40.0),
            ("2025-Q3", 0.0),
            ("2025-Q4", 80.0),
        ]

    def test_rollup_with_restriction(self, cube, date_dim):
        rolled = cube.rollup("date", date_dim.quarters(), region="east")
        assert sum(total for _, total in rolled) == 120.0

    def test_rollup_custom_buckets(self, cube):
        bands = [("young", (18, 40)), ("older", (41, 90))]
        rolled = cube.rollup("age", bands)
        assert rolled[0] == ("young", 30.0)
        assert rolled[1] == ("older", 120.0)

    def test_rollup_single_value_buckets(self, cube):
        rolled = cube.rollup("region", [("w", "west"), ("e", "east")])
        assert rolled == [("w", 30.0), ("e", 120.0)]

    def test_rollup_unknown_dimension(self, cube):
        with pytest.raises(SchemaError):
            cube.rollup("flavour", [("x", 1)])

    def test_rollup_totals_match_grand_total(self, cube, date_dim):
        rolled = cube.rollup("date", date_dim.months())
        assert sum(total for _, total in rolled) == cube.sum()


class TestPivot:
    def test_cross_tab(self, cube, date_dim):
        bands = [("young", (18, 40)), ("older", (41, 90))]
        halves = [("H1", (JAN1, datetime.date(2025, 6, 30))),
                  ("H2", (datetime.date(2025, 7, 1), datetime.date(2025, 12, 31)))]
        table = cube.pivot("age", bands, "date", halves)
        assert table[0] == ["young", 30.0, 0.0]
        assert table[1] == ["older", 40.0, 80.0]

    def test_pivot_needs_distinct_dimensions(self, cube):
        with pytest.raises(SchemaError):
            cube.pivot("age", [("a", (18, 90))], "age", [("b", (18, 90))])

    def test_pivot_grand_total(self, cube, date_dim):
        bands = [("all", (18, 90))]
        table = cube.pivot("age", bands, "date", date_dim.quarters())
        assert sum(table[0][1:]) == cube.sum()


class TestTopK:
    def test_top_k_ages(self, cube):
        top = cube.top_k("age", 2)
        assert top[0] == (70, 80.0)
        assert top[1] == (55, 40.0)

    def test_top_k_with_restriction(self, cube):
        top = cube.top_k("region", 1, age=(18, 40))
        assert top == [("west", 30.0)]

    def test_top_k_validation(self, cube):
        with pytest.raises(ValueError):
            cube.top_k("age", 0)

    def test_top_k_larger_than_dimension(self, cube):
        top = cube.top_k("region", 10)
        assert len(top) == 2


class TestCompact:
    def test_compact_shrinks_domain(self):
        cube = GrowableCube(dims=2, initial_side=4)
        cube.add((0, 0), 1)
        cube.add((1_000_000, 0), 5)
        cube.add((1_000_000, 0), -5)  # the outlier disappears
        big = cube.side
        cube.compact()
        assert cube.side < big / 1000
        assert cube.get((0, 0)) == 1
        assert cube.total() == 1

    def test_compact_preserves_contents(self, rng):
        cube = GrowableCube(dims=2, initial_side=4)
        reference = {}
        for _ in range(60):
            point = (int(rng.integers(-2000, 2000)), int(rng.integers(-2000, 2000)))
            value = int(rng.integers(1, 9))
            cube.add(point, value)
            reference[point] = reference.get(point, 0) + value
        cube.compact()
        for point, value in reference.items():
            assert cube.get(point) == value
        assert cube.total() == sum(reference.values())
        cube._cube.validate()

    def test_compact_empty_cube_resets(self):
        cube = GrowableCube(dims=3)
        cube.add((9, 9, 9), 5)
        cube.add((9, 9, 9), -5)
        cube.compact()
        assert cube.bounds is None
        cube.add((-100, 0, 100), 2)  # re-anchors cleanly
        assert cube.get((-100, 0, 100)) == 2

    def test_compact_updates_bounds(self):
        cube = GrowableCube(dims=1, initial_side=4)
        cube.add(100, 1)
        cube.add(5000, 1)
        cube.add(5000, -1)
        cube.compact()
        assert cube.bounds == ((100,), (100,))

    def test_memory_shrinks(self):
        cube = GrowableCube(dims=2, initial_side=4)
        for index in range(8):
            cube.add((index, index), 1)
        cube.add((500_000, 500_000), 1)
        cube.add((500_000, 500_000), -1)
        before = cube.memory_cells()
        cube.compact()
        assert cube.memory_cells() < before
