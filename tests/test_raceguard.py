"""Tests for the runtime lock sanitizer (repro.analysis.raceguard)."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.analysis.raceguard import (
    GuardedList,
    LockSanitizer,
    SanitizedLock,
    attach_engine,
)
from repro.cli import main as cli_main
from repro.engine import ShardedEngine
from repro.exceptions import (
    LockOrderViolationError,
    RaceGuardError,
    ReproError,
    UnguardedMutationError,
)
from repro.obs.clock import ManualClock


class TestSanitizedLock:
    def test_wraps_as_context_manager(self, lock_sanitizer):
        lock = lock_sanitizer.wrap(threading.RLock(), "L")
        assert isinstance(lock, SanitizedLock)
        with lock:
            assert lock_sanitizer.holds("L")
            assert lock_sanitizer.held_by_current_thread() == ("L",)
        assert not lock_sanitizer.holds("L")

    def test_events_stamped_on_injected_clock(self):
        clock = ManualClock()
        sanitizer = LockSanitizer(clock)
        lock = sanitizer.wrap(threading.RLock(), "L")
        with lock:
            clock.advance(1.5)
        kinds = [(e.kind, e.timestamp) for e in sanitizer.events]
        assert kinds == [("acquire", 0.0), ("release", 1.5)]

    def test_reentrant_acquisition_allowed(self, lock_sanitizer):
        lock = lock_sanitizer.wrap(threading.RLock(), "L")
        with lock:
            with lock:
                assert lock_sanitizer.held_by_current_thread() == ("L",)
            assert lock_sanitizer.holds("L")
        assert not lock_sanitizer.holds("L")

    def test_consistent_nesting_is_clean(self, lock_sanitizer):
        a = lock_sanitizer.wrap(threading.RLock(), "a")
        b = lock_sanitizer.wrap(threading.RLock(), "b")
        for _ in range(3):
            with a:
                with b:
                    pass
        assert lock_sanitizer.violations == []

    def test_abba_inversion_raises(self, lock_sanitizer):
        a = lock_sanitizer.wrap(threading.RLock(), "a")
        b = lock_sanitizer.wrap(threading.RLock(), "b")
        with a:
            with b:
                pass
        with b:
            with pytest.raises(LockOrderViolationError) as excinfo:
                a.acquire()
        assert "latent ABBA deadlock" in str(excinfo.value)
        assert excinfo.value.__class__.__mro__[1:3] == (
            RaceGuardError,
            ReproError,
        )

    def test_inversion_detected_across_threads(self, lock_sanitizer):
        a = lock_sanitizer.wrap(threading.RLock(), "a")
        b = lock_sanitizer.wrap(threading.RLock(), "b")

        def forward():
            with a:
                with b:
                    pass

        worker = threading.Thread(target=forward)
        worker.start()
        worker.join()
        with b:
            with pytest.raises(LockOrderViolationError):
                a.acquire()

    def test_record_mode_collects_instead_of_raising(self):
        sanitizer = LockSanitizer(ManualClock(), strict=False)
        a = sanitizer.wrap(threading.RLock(), "a")
        b = sanitizer.wrap(threading.RLock(), "b")
        with a:
            with b:
                pass
        with b:
            with a:
                pass
        assert len(sanitizer.violations) == 1
        assert isinstance(sanitizer.violations[0], LockOrderViolationError)
        assert sanitizer.report()[0].startswith("LockOrderViolationError")


class TestGuardedProxies:
    def test_guarded_list_requires_lock(self, lock_sanitizer):
        lock = lock_sanitizer.wrap(threading.RLock(), "L")
        shared = lock_sanitizer.guard_list([0, 0], "epochs", ("L",))
        assert isinstance(shared, GuardedList)
        with lock:
            shared[0] += 1
        with pytest.raises(UnguardedMutationError):
            shared[1] = 5
        assert shared[0] == 1 and shared[1] == 0

    def test_guarded_list_reads_pass_through(self, lock_sanitizer):
        shared = lock_sanitizer.guard_list([1, 2, 3], "epochs", ("L",))
        assert list(shared) == [1, 2, 3]
        assert len(shared) == 3
        assert 2 in shared
        assert shared == [1, 2, 3]

    def test_guarded_object_methods_checked(self, lock_sanitizer):
        lock = lock_sanitizer.wrap(threading.RLock(), "L")
        store = lock_sanitizer.guard_object({}, "cache", ("L",))
        with lock:
            store["a"] = 1
        with pytest.raises(UnguardedMutationError):
            store["b"] = 2
        with pytest.raises(UnguardedMutationError):
            store.clear()
        assert store["a"] == 1

    def test_violation_names_the_missing_lock(self, lock_sanitizer):
        shared = lock_sanitizer.guard_list([0], "epochs", ("engine._lock",))
        with pytest.raises(UnguardedMutationError, match="engine._lock"):
            shared[0] = 1


class TestEngineAttachment:
    def test_engine_serves_clean_under_sanitizer(self, lock_sanitizer):
        data = np.arange(64)
        with ShardedEngine.from_array(data, shards=4) as engine:
            attach_engine(engine, lock_sanitizer)
            assert engine.prefix_sum(20) == data[:21].sum()
            engine.add(3, 7)
            assert engine.prefix_sum(20) == data[:21].sum() + 7
        assert lock_sanitizer.violations == []
        assert any(e.kind == "acquire" for e in lock_sanitizer.events)
        assert lock_sanitizer.held_by_current_thread() == ()

    def test_attached_engine_catches_unguarded_epoch_write(self, lock_sanitizer):
        data = np.arange(16)
        with ShardedEngine.from_array(data, shards=2) as engine:
            attach_engine(engine, lock_sanitizer)
            with pytest.raises(UnguardedMutationError):
                engine._epochs[0] += 1
            with pytest.raises(UnguardedMutationError):
                engine._cache.clear()


class TestChaosSanitize:
    def test_sanitized_smoke_soak_is_clean(self, tmp_path):
        # The acceptance smoke: a short chaos soak with the sanitizer
        # attached completes with exit 0 (no mismatches, no violations).
        assert (
            cli_main(
                [
                    "chaos",
                    "--events",
                    "80",
                    "--shape",
                    "32",
                    "32",
                    "--sanitize",
                    "--json",
                    str(tmp_path / "chaos.json"),
                ]
            )
            == 0
        )
