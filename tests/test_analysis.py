"""Tests for the correctness tooling: auditor, sanitizer, and linter.

The corruption tests are the auditor's own acceptance suite: each one
breaks a specific cached quantity by hand (an STS value, an overlay box
value, a free-list link) and requires :func:`repro.analysis.audit` to
raise a :class:`~repro.exceptions.StructureError` whose message carries
a path to the offending node.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import AuditError, audit, sanitize
from repro.analysis.lint import lint_source
from repro.cli import main as cli_main
from repro.core.bc_tree import BcTree
from repro.core.ddc import DynamicDataCube
from repro.core.growth import GrowableCube
from repro.core.keyed_bc_tree import KeyedBcTree
from repro.core.overlay import ArrayOverlay, TreeOverlay
from repro.counters import OpCounter
from repro.exceptions import StructureError
from repro.storage.buffer import BufferPool
from repro.storage.disk_bc_tree import DiskBcTree
from repro.storage.disk_ddc import DiskDynamicDataCube
from repro.storage.pagefile import PageFile


def _sample_bc_tree(count: int = 64, fanout: int = 4) -> BcTree:
    return BcTree.from_values(range(count), fanout=fanout)


def _sample_ddc(side: int = 8, seed: int = 7) -> DynamicDataCube:
    rng = np.random.default_rng(seed)
    return DynamicDataCube.from_array(rng.integers(-5, 6, size=(side, side)))


class TestAuditClean:
    """A healthy structure of every kind passes its audit."""

    def test_bc_tree(self):
        report = audit(_sample_bc_tree())
        assert report.ok and report.checks > 10

    def test_keyed_bc_tree(self):
        tree = KeyedBcTree.from_items([(k, k * 2) for k in range(0, 90, 3)])
        assert audit(tree).ok

    def test_ddc(self):
        assert audit(_sample_ddc()).ok

    def test_array_overlay(self):
        region = np.arange(16).reshape(4, 4)
        assert audit(ArrayOverlay.from_dense(region, OpCounter())).ok

    def test_tree_overlay(self):
        region = np.arange(16).reshape(4, 4)
        assert audit(TreeOverlay.from_dense(region, OpCounter())).ok

    def test_growable_cube(self):
        cube = GrowableCube(dims=2, initial_side=4)
        for point in [(-9, 14), (3, -2), (40, 40)]:
            cube.add(point, 5)
        assert audit(cube).ok

    def test_pagefile(self, tmp_path):
        with PageFile(tmp_path / "clean.pg", page_size=128) as pages:
            ids = [pages.allocate() for _ in range(5)]
            pages.free(ids[1])
            pages.free(ids[3])
            assert audit(pages).ok

    def test_buffer_pool(self):
        pool = BufferPool(capacity=3, objects_per_page=2)
        for obj in [object() for _ in range(9)]:
            pool.access(obj)
        assert audit(pool).ok

    def test_disk_bc_tree(self, tmp_path):
        with PageFile(tmp_path / "tree.pg", page_size=512) as pages:
            tree = DiskBcTree(pages)
            for key in range(60):
                tree.add(key, key)
            assert audit(tree).ok

    def test_disk_ddc(self, tmp_path):
        with PageFile(tmp_path / "cube.pg", page_size=4096) as pages:
            cube = DiskDynamicDataCube((8, 8), pages=pages)
            rng = np.random.default_rng(3)
            for _ in range(50):
                cell = tuple(int(rng.integers(0, 8)) for _ in range(2))
                cube.add(cell, int(rng.integers(1, 9)))
            assert audit(cube).ok

    def test_fallback_uses_validate(self):
        class SelfChecking:
            def validate(self):
                raise StructureError("deliberately broken")

        with pytest.raises(StructureError, match="deliberately broken"):
            audit(SelfChecking())

    def test_fallback_without_validate_fails(self):
        report = audit(object(), raise_on_failure=False)
        assert not report.ok


class TestAuditCorruption:
    """Hand-planted corruption must be found and located by path."""

    def test_corrupt_bc_tree_sts(self):
        tree = _sample_bc_tree()
        tree._root.sums[1] += 7
        with pytest.raises(StructureError, match=r"sums\[1\]"):
            audit(tree)

    def test_corrupt_bc_tree_count(self):
        tree = _sample_bc_tree()
        tree._root.counts[0] -= 1
        with pytest.raises(StructureError, match=r"counts\[0\]"):
            audit(tree)

    def test_corrupt_keyed_tree_max_key(self):
        tree = KeyedBcTree.from_items([(k, 1) for k in range(40)])
        tree._root.max_keys[0] += 100
        with pytest.raises(StructureError, match=r"max_keys\[0\]"):
            audit(tree)

    def test_corrupt_overlay_subtotal(self):
        cube = _sample_ddc()
        overlay = next(o for o in cube._root.overlays if o is not None)
        overlay._subtotal += 3
        with pytest.raises(StructureError, match=r"root/box\[\d+\]"):
            audit(cube)

    def test_corrupt_overlay_group_corner(self):
        region = np.arange(1, 17).reshape(4, 4)
        overlay = ArrayOverlay.from_dense(region, OpCounter())
        overlay._groups[0][-1] += 1  # cumulative corner must equal subtotal
        report = audit(overlay, raise_on_failure=False)
        assert not report.ok
        assert any("group[0]" in finding.path for finding in report.findings)

    def test_corrupt_overlay_group_row_inside_cube(self):
        cube = _sample_ddc()
        overlay = next(o for o in cube._root.overlays if o is not None)
        # Shift mass between rows: the group total (and so the subtotal
        # check) is unchanged, but intermediate row-sum values now drift
        # from the covered cells — only the cube-level audit, which has
        # the dense mirror, can see it.
        group = overlay._groups[0]
        group.add(0, 1)
        group.add(overlay.side - 1, -1)
        with pytest.raises(StructureError, match=r"group\[0\]/row\[\d+\]"):
            audit(cube)

    def test_corrupt_tree_overlay_secondary(self):
        region = np.arange(1, 17).reshape(4, 4)
        overlay = TreeOverlay.from_dense(region, OpCounter())
        overlay._groups[0].add(0, 5)  # group drifts from the subtotal
        with pytest.raises(StructureError, match=r"group\[0\]"):
            audit(overlay)

    def test_corrupt_growable_bounds(self):
        cube = GrowableCube(dims=2, initial_side=4)
        cube.add((1, 1), 3)
        cube._high_bounds[0] = cube._origin[0] + cube.side + 5
        with pytest.raises(StructureError, match=r"bounds\[0\]"):
            audit(cube)

    def test_corrupt_pagefile_free_list(self, tmp_path):
        with PageFile(tmp_path / "broken.pg", page_size=128) as pages:
            ids = [pages.allocate() for _ in range(4)]
            pages.free(ids[0])
            pages.free(ids[2])
            # Point the head's on-disk link beyond the allocated pages.
            import struct

            pages._write_raw(ids[2], struct.pack("<Q", 999))
            with pytest.raises(StructureError, match=r"free\[1\]"):
                audit(pages)

    def test_corrupt_pagefile_free_cycle(self, tmp_path):
        with PageFile(tmp_path / "cycle.pg", page_size=128) as pages:
            ids = [pages.allocate() for _ in range(3)]
            pages.free(ids[0])
            pages.free(ids[1])
            import struct

            pages._write_raw(ids[0], struct.pack("<Q", ids[1]))
            with pytest.raises(StructureError, match="cycle"):
                audit(pages)

    def test_corrupt_buffer_pool_stats(self):
        pool = BufferPool(capacity=2)
        pool.access(object())
        pool.stats.hits += 1
        with pytest.raises(StructureError, match="accesses"):
            audit(pool)

    def test_corrupt_disk_ddc_subtotal(self, tmp_path):
        with PageFile(tmp_path / "cube.pg", page_size=4096) as pages:
            cube = DiskDynamicDataCube((4, 4), pages=pages)
            for cell in [(0, 0), (1, 3), (3, 2)]:
                cube.add(cell, 4)
            cube.flush()
            node, _ = cube._node_cache[cube._root_page]
            mask = next(
                m for m, page in enumerate(node.children) if page != 2**64 - 1
            )
            node.subtotals[mask] += 9
            cube._node_cache[cube._root_page] = (node, True)
            with pytest.raises(StructureError, match=r"box\[\d+\]"):
                audit(cube)

    def test_report_inspection_without_raise(self):
        tree = _sample_bc_tree()
        tree._root.sums[0] += 1
        report = audit(tree, raise_on_failure=False)
        assert not report.ok
        assert "FAIL" in report.render()


class TestSanitize:
    def test_mutations_trigger_audits(self):
        tree = sanitize(BcTree(fanout=4))
        for value in range(10):
            tree.append(value)
        assert tree.audits == 10
        assert tree.to_list() == list(range(10))

    def test_wrapped_escape_hatch(self):
        tree = sanitize(BcTree(fanout=4))
        assert isinstance(tree.wrapped, BcTree)

    def test_corruption_detected_on_next_mutation(self):
        tree = sanitize(BcTree.from_values(range(32), fanout=4))
        tree.wrapped._root.sums[0] += 2
        with pytest.raises(AuditError):
            tree.append(1)

    def test_pre_corrupted_structure_rejected_up_front(self):
        tree = BcTree.from_values(range(32), fanout=4)
        tree._root.sums[0] += 2
        with pytest.raises(AuditError):
            sanitize(tree)


class TestLintRules:
    """Positive and negative fixtures for every REP rule."""

    def _findings(self, source: str):
        return lint_source(source, "fixture.py")

    def _rules(self, source: str) -> set[str]:
        return {finding.rule for finding in self._findings(source)}

    def test_rep001_raw_exception_flagged(self):
        source = '__all__ = []\ndef f():\n    raise ValueError("bad")\n'
        assert "REP001" in self._rules(source)

    def test_rep001_hierarchy_exception_passes(self):
        source = (
            "__all__ = []\n"
            "from repro.exceptions import ConfigurationError\n"
            "def f():\n"
            '    raise ConfigurationError("bad")\n'
        )
        assert self._findings(source) == []

    def test_rep001_re_raise_name_flagged(self):
        source = "__all__ = []\ndef f():\n    raise KeyError\n"
        assert "REP001" in self._rules(source)

    def test_rep002_uncharged_cell_access_flagged(self):
        source = (
            "__all__ = []\n"
            "class Tree:\n"
            "    def __init__(self):\n"
            "        self.stats = object()\n"
            "    def get(self, index):\n"
            "        return self._cells[index]\n"
        )
        assert "REP002" in self._rules(source)

    def test_rep002_direct_charge_passes(self):
        source = (
            "__all__ = []\n"
            "class Tree:\n"
            "    def get(self, index):\n"
            "        self.stats.cell_reads += 1\n"
            "        return self._cells[index]\n"
        )
        assert self._findings(source) == []

    def test_rep002_delegated_charge_passes(self):
        source = (
            "__all__ = []\n"
            "class Tree:\n"
            "    def _charge(self):\n"
            "        self.stats.cell_reads += 1\n"
            "    def get(self, index):\n"
            "        self._charge()\n"
            "        return self._cells[index]\n"
        )
        assert self._findings(source) == []

    def test_rep003_mutable_default_flagged(self):
        source = "__all__ = []\ndef f(items=[]):\n    return items\n"
        assert "REP003" in self._rules(source)

    def test_rep003_none_default_passes(self):
        source = "__all__ = []\ndef f(items=None):\n    return items or []\n"
        assert self._findings(source) == []

    def test_rep004_bare_assert_flagged(self):
        source = "__all__ = []\ndef f(x):\n    assert x > 0\n"
        assert "REP004" in self._rules(source)

    def test_rep005_missing_all_flagged(self):
        assert "REP005" in self._rules("def f():\n    return 1\n")

    def test_rep005_private_module_exempt(self):
        findings = lint_source("def f():\n    return 1\n", "_private.py")
        assert findings == []

    def test_noqa_suppresses_one_rule(self):
        source = (
            "__all__ = []\n"
            "def f():\n"
            '    raise ValueError("bad")  # noqa: REP001\n'
        )
        assert self._findings(source) == []

    def test_noqa_other_rule_does_not_suppress(self):
        source = (
            "__all__ = []\n"
            "def f():\n"
            '    raise ValueError("bad")  # noqa: REP004\n'
        )
        assert "REP001" in self._rules(source)

    def test_rep007_unguarded_epoch_mutation_flagged(self):
        source = (
            "__all__ = []\n"
            "class Engine:\n"
            "    def add(self, cell, delta):\n"
            "        self._epochs[0] += 1\n"
        )
        findings = lint_source(source, "src/repro/engine/engine.py")
        assert "REP007" in {finding.rule for finding in findings}

    def test_rep007_unguarded_cache_call_flagged(self):
        source = (
            "__all__ = []\n"
            "class Engine:\n"
            "    def query(self, key):\n"
            "        return self._cache.get(key, self._epochs)\n"
        )
        findings = lint_source(source, "src/repro/engine/engine.py")
        assert "REP007" in {finding.rule for finding in findings}

    def test_rep007_lock_guarded_mutation_passes(self):
        source = (
            "__all__ = []\n"
            "class Engine:\n"
            "    def add(self, cell, delta):\n"
            "        with self._lock:\n"
            "            self._epochs[0] += 1\n"
            "            self._cache.clear()\n"
        )
        findings = lint_source(source, "src/repro/engine/engine.py")
        assert findings == []

    def test_rep007_locked_helper_exempt(self):
        source = (
            "__all__ = []\n"
            "class Engine:\n"
            "    def _locked_compute(self, key):\n"
            "        self._epochs[0] += 1\n"
            "        self._cache.put(key, 0, (0,), self._epochs)\n"
            "    def __init__(self):\n"
            "        self._epochs = [0]\n"
        )
        findings = lint_source(source, "src/repro/engine/engine.py")
        assert findings == []

    def test_rep007_unguarded_breaker_drive_flagged(self):
        # Element-wise drives through one subscript must still be seen.
        source = (
            "__all__ = []\n"
            "class Engine:\n"
            "    def poke(self, i):\n"
            "        self._breakers[i].record_failure(0.0)\n"
        )
        findings = lint_source(source, "src/repro/engine/engine.py")
        assert "REP007" in {finding.rule for finding in findings}

    def test_rep007_locked_breaker_drive_passes(self):
        source = (
            "__all__ = []\n"
            "class Engine:\n"
            "    def poke(self, i):\n"
            "        with self._lock:\n"
            "            self._breakers[i].record_success(0.0)\n"
        )
        assert lint_source(source, "src/repro/engine/engine.py") == []

    def test_rep007_only_applies_to_engine_modules(self):
        source = (
            "__all__ = []\n"
            "class Other:\n"
            "    def poke(self):\n"
            "        self._epochs[0] += 1\n"
        )
        assert self._findings(source) == []

    def test_rep008_direct_clock_call_flagged_in_hot_paths(self):
        source = (
            "__all__ = []\n"
            "import time\n"
            "def f():\n"
            "    return time.perf_counter()\n"
        )
        for module_path in (
            "src/repro/core/ddc.py",
            "src/repro/methods/base.py",
            "src/repro/engine/engine.py",
        ):
            findings = lint_source(source, module_path)
            assert "REP008" in {f.rule for f in findings}, module_path

    def test_rep008_covers_from_imports_and_variants(self):
        source = (
            "__all__ = []\n"
            "from time import monotonic, perf_counter_ns\n"
            "def f():\n"
            "    return monotonic() + perf_counter_ns()\n"
        )
        findings = lint_source(source, "src/repro/core/ddc.py")
        assert [f.rule for f in findings] == ["REP008", "REP008"]

    def test_rep008_flags_real_sleep_in_hot_paths(self):
        # Real sleeps in the fan-out would make chaos tests wall-clock
        # slow and nondeterministic; backoff must use the injected clock.
        source = (
            "__all__ = []\n"
            "import time\n"
            "def backoff():\n"
            "    time.sleep(0.01)\n"
        )
        findings = lint_source(source, "src/repro/engine/engine.py")
        assert "REP008" in {f.rule for f in findings}

    def test_rep008_allows_clock_calls_outside_hot_paths(self):
        source = (
            "__all__ = []\n"
            "import time\n"
            "def now():\n"
            "    return time.perf_counter()\n"
        )
        for module_path in ("src/repro/obs/clock.py", "src/repro/cli.py"):
            assert lint_source(source, module_path) == []

    def test_rep008_allows_injected_clock_in_hot_paths(self):
        source = (
            "__all__ = []\n"
            "class Engine:\n"
            "    def serve(self):\n"
            "        with self._lock:\n"
            "            return self.obs.clock.now()\n"
        )
        assert lint_source(source, "src/repro/engine/engine.py") == []

    def test_rep008_noqa_suppression(self):
        source = (
            "__all__ = []\n"
            "import time\n"
            "def f():\n"
            "    return time.monotonic()  # noqa: REP008\n"
        )
        assert lint_source(source, "src/repro/core/ddc.py") == []

    def test_syntax_error_reported(self):
        assert self._rules("def f(:\n") == {"REP000"}

    def test_library_tree_is_clean(self):
        from repro.analysis.lint import lint_paths

        assert lint_paths(["src/repro"]) == []


class TestAuditCli:
    def test_cli_audit_healthy_cube(self, tmp_path, capsys):
        from repro.persist import save_cube

        save_cube(_sample_ddc(), tmp_path / "cube.npz")
        assert cli_main(["audit", str(tmp_path / "cube.npz")]) == 0
        assert "all invariants hold" in capsys.readouterr().out
