"""Tests for the CFG/dataflow analyzer (repro.analysis.flow)."""

from __future__ import annotations

import ast
import json
from pathlib import Path

import pytest

from repro.analysis.flow import (
    UNREACHED,
    FlowFinding,
    LockAnalyzer,
    WithEnter,
    WithExit,
    analyze_paths,
    analyze_sources,
    baseline_document,
    build_cfg,
    filter_baseline,
    fixpoint,
    load_baseline,
    render_markdown_table,
    solve_forward,
)
from repro.analysis.lint import lint_paths, lint_source
from repro.artifacts import write_document
from repro.cli import _chaos_exit_code
from repro.cli import main as cli_main

REPO_ROOT = Path(__file__).resolve().parents[1]

ENGINE_PATH = "src/repro/engine/fixture.py"


def _function(source: str):
    """Parse ``source`` and return its first function def."""
    node = ast.parse(source).body[0]
    assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    return node


def _flow(source: str, path: str = ENGINE_PATH) -> list[FlowFinding]:
    return analyze_sources([(path, source)])


# ----------------------------------------------------------------------
# CFG construction
# ----------------------------------------------------------------------


class TestCfg:
    def test_linear_function_is_one_block(self):
        cfg = build_cfg(_function("def f():\n    a = 1\n    b = 2\n"))
        reachable = [b for b in cfg.blocks if b.statements or b.successors]
        assert len(reachable) == 1
        assert [type(s).__name__ for s in reachable[0].statements] == [
            "Assign",
            "Assign",
        ]

    def test_if_forks_and_joins(self):
        cfg = build_cfg(
            _function(
                "def f(x):\n"
                "    if x:\n"
                "        a = 1\n"
                "    else:\n"
                "        a = 2\n"
                "    return a\n"
            )
        )
        entry = cfg.blocks[cfg.entry]
        assert len(entry.successors) == 2
        preds = cfg.predecessors()
        joins = [index for index, sources in preds.items() if len(sources) == 2]
        assert joins, "then/else must converge on a join block"

    def test_while_has_back_edge(self):
        cfg = build_cfg(
            _function("def f(n):\n    while n:\n        n -= 1\n    return n\n")
        )
        header = next(
            b
            for b in cfg.blocks
            if b.statements and isinstance(b.statements[0], ast.While)
        )
        body = cfg.blocks[header.successors[0]]
        assert header.index in body.successors, "loop body edges back to header"

    def test_with_emits_enter_and_exit_markers(self):
        cfg = build_cfg(
            _function(
                "def f(self):\n"
                "    with self._lock:\n"
                "        x = 1\n"
                "    y = 2\n"
            )
        )
        kinds = [
            type(s).__name__ for block in cfg.blocks for s in block.statements
        ]
        assert kinds.count("WithEnter") == 1
        assert kinds.count("WithExit") == 1
        enter = kinds.index("WithEnter")
        exit_ = kinds.index("WithExit")
        assert enter < exit_

    def test_return_inside_with_unwinds_context(self):
        cfg = build_cfg(
            _function(
                "def f(self):\n"
                "    with self._lock:\n"
                "        return 1\n"
            )
        )
        statements = [s for block in cfg.blocks for s in block.statements]
        returns = [i for i, s in enumerate(statements) if isinstance(s, ast.Return)]
        exits = [i for i, s in enumerate(statements) if isinstance(s, WithExit)]
        assert returns and exits
        assert exits[0] > returns[0], "WithExit emitted on the early-return path"

    def test_try_body_edges_into_handler(self):
        cfg = build_cfg(
            _function(
                "def f(self):\n"
                "    try:\n"
                "        risky()\n"
                "    except ValueError:\n"
                "        pass\n"
            )
        )
        handler_blocks = {
            b.index
            for b in cfg.blocks
            if any(isinstance(s, ast.ExceptHandler) for s in b.statements)
        }
        assert handler_blocks
        body_edges = {
            succ
            for b in cfg.blocks
            if any(
                isinstance(s, ast.Expr) and isinstance(s.value, ast.Call)
                for s in b.statements
            )
            for succ in b.successors
        }
        assert handler_blocks & body_edges, "risky() block must edge into handler"


class TestDataflowSolvers:
    def test_solve_forward_intersects_at_join(self):
        # Must-analysis: a fact holding on only one branch dies at the join.
        cfg = build_cfg(
            _function(
                "def f(self, x):\n"
                "    if x:\n"
                "        with self._lock:\n"
                "            a = 1\n"
                "    b = 2\n"
            )
        )

        def transfer(block, state):
            for statement in block.statements:
                if isinstance(statement, WithEnter):
                    state = state | {"lock"}
                elif isinstance(statement, WithExit):
                    state = state - {"lock"}
            return state

        states = solve_forward(
            cfg, transfer, frozenset(), lambda a, b: a & b
        )
        final_states = [
            states[b.index]
            for b in cfg.blocks
            if not b.successors and states[b.index] is not UNREACHED
        ]
        assert final_states
        assert all(state == frozenset() for state in final_states)

    def test_fixpoint_propagates_transitively(self):
        graph = {"a": {"b"}, "b": {"c"}, "c": set()}
        seeds = {"a": set(), "b": set(), "c": {"x"}}

        def step(name, states):
            merged = set(seeds[name])
            for callee in graph[name]:
                merged |= states[callee]
            return frozenset(merged)

        result = fixpoint(
            sorted(graph), lambda name: frozenset(seeds[name]), step
        )
        assert result["a"] == frozenset({"x"})


# ----------------------------------------------------------------------
# REP009: unguarded writes (including the alias hole REP007 misses)
# ----------------------------------------------------------------------

RACY_ALIAS = """\
class Engine:
    def serve(self, key, value):
        c = self._cache
        c[key] = value
"""

CLEAN_LOCKED = """\
class Engine:
    def serve(self, key, value):
        with self._lock:
            c = self._cache
            c[key] = value
        self._locked_touch(key)

    def _locked_touch(self, key):
        self._epochs[0] += 1
"""

BRANCH_RACY = """\
class Engine:
    def bump(self, index, fast):
        if fast:
            self._epochs[index] += 1
        else:
            with self._lock:
                self._epochs[index] += 1
"""

CLOSURE_UNDER_LOCK = """\
class Engine:
    def fanout(self):
        with self._lock:
            def run_shard(index):
                self._epochs[index] += 1
            return run_shard
"""


class TestRep009:
    def test_aliased_unguarded_write_detected(self):
        findings = _flow(RACY_ALIAS)
        assert [(f.rule, f.line, f.symbol) for f in findings] == [
            ("REP009", 4, "Engine.serve")
        ]
        assert "alias 'c'" in findings[0].message

    def test_rep007_provably_misses_the_alias(self):
        # The contract from the issue: the dataflow rule closes a hole
        # the lexical pre-pass cannot see without alias tracking.  The
        # pre-pass now has its own lexical alias sweep, so drive the
        # flow-sensitive spelling it still can't follow: an alias
        # laundered through a second local binding.
        laundered = RACY_ALIAS.replace(
            "        c = self._cache\n",
            "        tmp = self._cache\n        c = tmp\n",
        )
        lexical = [
            f
            for f in lint_source(laundered, ENGINE_PATH)
            if f.rule == "REP007"
        ]
        assert lexical == [], "lexical pass cannot chain aliases"
        flow = [f for f in _flow(laundered) if f.rule == "REP009"]
        assert len(flow) == 1
        assert flow[0].line == 5

    def test_clean_locked_excerpt_has_no_findings(self):
        assert _flow(CLEAN_LOCKED) == []

    def test_must_analysis_flags_partially_locked_branch(self):
        findings = [f for f in _flow(BRANCH_RACY) if f.rule == "REP009"]
        assert [f.line for f in findings] == [4]

    def test_closure_captures_lock_state_at_definition(self):
        assert _flow(CLOSURE_UNDER_LOCK) == []

    def test_init_is_exempt(self):
        source = "class Engine:\n    def __init__(self):\n        self._epochs = [0]\n"
        assert _flow(source) == []

    def test_noqa_suppresses(self):
        suppressed = RACY_ALIAS.replace(
            "c[key] = value", "c[key] = value  # noqa: REP009"
        )
        assert _flow(suppressed) == []


# ----------------------------------------------------------------------
# REP010: lock-order cycles
# ----------------------------------------------------------------------

ABBA = """\
class Engine:
    def forward(self):
        with self._cache_lock:
            with self._epoch_lock:
                pass

    def backward(self):
        with self._epoch_lock:
            with self._cache_lock:
                pass
"""

CONSISTENT = """\
class Engine:
    def one(self):
        with self._cache_lock:
            with self._epoch_lock:
                pass

    def two(self):
        with self._cache_lock:
            with self._epoch_lock:
                pass
"""

ABBA_VIA_CALL = """\
class Engine:
    def forward(self):
        with self._cache_lock:
            self._bump()

    def _bump(self):
        with self._epoch_lock:
            pass

    def backward(self):
        with self._epoch_lock:
            with self._cache_lock:
                pass
"""


class TestRep010:
    def test_abba_deadlock_detected(self):
        findings = [f for f in _flow(ABBA) if f.rule == "REP010"]
        assert len(findings) == 1
        finding = findings[0]
        assert finding.symbol == "<lock-order-graph>"
        assert finding.line == 4  # earliest edge site
        assert "self._cache_lock -> self._epoch_lock" in finding.message

    def test_consistent_order_is_clean(self):
        assert [f for f in _flow(CONSISTENT) if f.rule == "REP010"] == []

    def test_cycle_through_self_call_detected(self):
        findings = [f for f in _flow(ABBA_VIA_CALL) if f.rule == "REP010"]
        assert len(findings) == 1

    def test_reentrant_acquisition_is_not_a_cycle(self):
        source = (
            "class Engine:\n"
            "    def nest(self):\n"
            "        with self._lock:\n"
            "            with self._lock:\n"
            "                pass\n"
        )
        assert [f for f in _flow(source) if f.rule == "REP010"] == []


# ----------------------------------------------------------------------
# REP011: escaping exceptions
# ----------------------------------------------------------------------

ESCAPING_KEYERROR = """\
class Engine:
    def lookup(self, key):
        \"\"\"Serve one key.\"\"\"
        return self._fetch(key)

    def _fetch(self, key):
        if key is None:
            raise KeyError(key)
        return key
"""


class TestRep011:
    def test_escaping_keyerror_flagged_at_raise_site(self):
        findings = [f for f in _flow(ESCAPING_KEYERROR) if f.rule == "REP011"]
        assert [(f.line, f.symbol) for f in findings] == [(8, "Engine.lookup")]
        assert "KeyError" in findings[0].message

    def test_hierarchy_aware_handler_catches(self):
        guarded = ESCAPING_KEYERROR.replace(
            "        return self._fetch(key)",
            "        try:\n"
            "            return self._fetch(key)\n"
            "        except LookupError:\n"
            "            return None",
        )
        assert [f for f in _flow(guarded) if f.rule == "REP011"] == []

    def test_docstring_declaration_is_the_escape_hatch(self):
        documented = ESCAPING_KEYERROR.replace(
            "Serve one key.", "Serve one key.\n\n        Raises KeyError."
        )
        assert [f for f in _flow(documented) if f.rule == "REP011"] == []

    def test_repro_rooted_exceptions_are_fine(self):
        source = (
            "class Engine:\n"
            "    def check(self, shape):\n"
            "        raise InvalidShapeError(shape)\n"
        )
        assert [f for f in _flow(source) if f.rule == "REP011"] == []

    def test_private_helpers_carry_no_contract(self):
        source = (
            "class Engine:\n"
            "    def _helper(self):\n"
            "        raise KeyError('x')\n"
        )
        assert [f for f in _flow(source) if f.rule == "REP011"] == []


# ----------------------------------------------------------------------
# REP012: hot-path allocations
# ----------------------------------------------------------------------

HOT_ALLOC = """\
class Cube:
    def prefix_sum(self, cell):
        total = 0
        while cell:
            total += sum(v for v in cell)
            cell = cell[:-1]
        return total
"""


class TestRep012:
    def test_generator_in_descent_loop_flagged(self):
        findings = _flow(HOT_ALLOC, path="src/repro/core/fixture.py")
        assert [(f.rule, f.line, f.symbol) for f in findings] == [
            ("REP012", 5, "Cube.prefix_sum")
        ]

    def test_batch_methods_are_exempt(self):
        batch = HOT_ALLOC.replace("def prefix_sum(", "def prefix_sum_many(")
        assert _flow(batch, path="src/repro/core/fixture.py") == []

    def test_hot_rules_do_not_apply_outside_hot_dirs(self):
        assert _flow(HOT_ALLOC, path="src/repro/obs/fixture.py") == []


# ----------------------------------------------------------------------
# Determinism, baseline, and the committed-tree regression
# ----------------------------------------------------------------------


class TestDeterminismAndBaseline:
    def test_analyze_sources_is_deterministic(self):
        sources = [
            (ENGINE_PATH, RACY_ALIAS + ABBA[len("class Engine:\n") :]),
            ("src/repro/core/fixture.py", HOT_ALLOC),
        ]
        first = analyze_sources(sources)
        second = analyze_sources(sources)
        assert first == second
        keys = [(f.path, f.line, f.rule, f.message) for f in first]
        assert keys == sorted(keys)

    def test_lint_paths_sorts_globally(self, tmp_path):
        # Two files given in reverse name order must still report sorted.
        b = tmp_path / "b.py"
        a = tmp_path / "zz_later" / "a.py"
        a.parent.mkdir()
        for path in (a, b):
            path.write_text("x = 1\n")  # REP005: no __all__
        findings = lint_paths([str(b), str(a)])
        assert [f.path for f in findings] == sorted(f.path for f in findings)

    def test_baseline_roundtrip_survives_line_drift(self, tmp_path):
        findings = _flow(RACY_ALIAS)
        baseline_path = tmp_path / "baseline.json"
        write_document(baseline_path, baseline_document(findings))
        # Same finding, shifted two lines down: still baselined because
        # the key is (path, rule, symbol), not the line number.
        shifted = _flow("\n\n" + RACY_ALIAS)
        fresh, suppressed = filter_baseline(
            shifted, load_baseline(baseline_path)
        )
        assert fresh == []
        assert suppressed == 1

    def test_committed_tree_is_clean_modulo_baseline(self, monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        findings = analyze_paths(["src/repro"])
        baseline = load_baseline("benchmarks/baselines/analyze.json")
        fresh, _ = filter_baseline(findings, baseline)
        assert fresh == [], (
            "un-baselined REP009-REP012 findings on src/ — fix them or "
            "run: repro analyze src/ --baseline "
            "benchmarks/baselines/analyze.json --update-baseline"
        )

    def test_library_tree_lint_clean_with_deferral(self, monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        assert lint_paths(["src/repro"], defer_to_flow=True) == []


# ----------------------------------------------------------------------
# CLI: repro analyze + chaos exit codes
# ----------------------------------------------------------------------


class TestAnalyzeCli:
    def _racy_tree(self, tmp_path) -> Path:
        root = tmp_path / "src" / "repro" / "engine"
        root.mkdir(parents=True)
        (root / "racy.py").write_text('__all__ = []\n' + RACY_ALIAS)
        return tmp_path / "src"

    def test_findings_exit_one(self, tmp_path, capsys):
        tree = self._racy_tree(tmp_path)
        assert cli_main(["analyze", str(tree)]) == 1
        out = capsys.readouterr().out
        assert "REP009" in out

    def test_clean_after_update_baseline(self, tmp_path):
        tree = self._racy_tree(tmp_path)
        baseline = tmp_path / "analyze.json"
        assert (
            cli_main(
                [
                    "analyze",
                    str(tree),
                    "--baseline",
                    str(baseline),
                    "--update-baseline",
                ]
            )
            == 0
        )
        assert (
            cli_main(["analyze", str(tree), "--baseline", str(baseline)]) == 0
        )

    def test_missing_path_exits_two(self, tmp_path):
        assert cli_main(["analyze", str(tmp_path / "nope")]) == 2

    def test_json_document_written(self, tmp_path):
        tree = self._racy_tree(tmp_path)
        report = tmp_path / "findings.json"
        assert cli_main(["analyze", str(tree), "--json", str(report)]) == 1
        document = json.loads(report.read_text())
        assert document["schema_version"] == 1
        assert document["experiment"] == "flow_analysis"
        assert [row["rule"] for row in document["rows"]] == ["REP009"]

    def test_step_summary_written_in_ci(self, tmp_path, monkeypatch):
        tree = self._racy_tree(tmp_path)
        summary = tmp_path / "summary.md"
        monkeypatch.setenv("GITHUB_STEP_SUMMARY", str(summary))
        cli_main(["analyze", str(tree)])
        text = summary.read_text()
        assert "repro analyze" in text
        assert "REP009" in text

    def test_markdown_table_escapes_pipes(self):
        finding = FlowFinding("a.py", 1, "REP009", "f", "a | b")
        assert "a \\| b" in render_markdown_table([finding])


class TestChaosExitCodes:
    def test_sanitizer_violations_dominate(self):
        assert _chaos_exit_code(0, 0) == 0
        assert _chaos_exit_code(3, 0) == 1
        assert _chaos_exit_code(0, 2) == 2
        assert _chaos_exit_code(3, 2) == 2
