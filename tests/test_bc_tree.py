"""Tests for the Cumulative B-Tree (B^c tree, Section 4.1)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bc_tree import BcTree, _balanced_chunks
from repro.counters import OpCounter
from repro.exceptions import OutOfBoundsError, StructureError


def reference_prefix(values: list, index: int) -> int:
    return sum(values[: index + 1])


class TestConstruction:
    def test_empty_tree(self):
        tree = BcTree()
        assert len(tree) == 0
        assert tree.total() == 0
        tree.validate()

    def test_from_values_round_trip(self):
        values = list(range(100))
        tree = BcTree.from_values(values, fanout=4)
        assert tree.to_list() == values
        assert tree.total() == sum(values)
        tree.validate()

    def test_paper_example(self):
        """The Figure 14 tree: rows [14, 9, 10, 12, 8, 13]."""
        tree = BcTree.from_values([14, 9, 10, 12, 8, 13], fanout=3)
        # Row sum value for cell 5 (paper counts rows from 1, so index 4):
        # 33 (left STS) + 12 (preceding STS) + 8 (leaf) = 53.
        assert tree.prefix_sum(4) == 53
        assert tree.prefix_sum(0) == 14
        assert tree.prefix_sum(1) == 23
        assert tree.total() == 66

    def test_rejects_tiny_fanout(self):
        with pytest.raises(ValueError):
            BcTree(fanout=2)

    @pytest.mark.parametrize("size", [0, 1, 2, 3, 4, 5, 15, 16, 17, 100, 257])
    @pytest.mark.parametrize("fanout", [3, 4, 16])
    def test_bulk_build_valid_at_all_sizes(self, size, fanout):
        tree = BcTree.from_values(list(range(size)), fanout=fanout)
        tree.validate()
        assert len(tree) == size

    def test_shared_counter(self):
        counter = OpCounter()
        tree = BcTree.from_values([1, 2, 3, 4], counter=counter)
        tree.prefix_sum(2)
        assert tree.stats is counter
        assert counter.cell_reads > 0


class TestQueries:
    def test_prefix_sums_match_reference(self):
        values = [7, -3, 0, 11, 2, 2, 9, -5, 4]
        tree = BcTree.from_values(values, fanout=3)
        for index in range(len(values)):
            assert tree.prefix_sum(index) == reference_prefix(values, index)

    def test_get_individual_rows(self):
        values = [5, 1, 4, 1, 5, 9, 2, 6]
        tree = BcTree.from_values(values, fanout=3)
        for index, value in enumerate(values):
            assert tree.get(index) == value

    def test_out_of_range_queries(self):
        tree = BcTree.from_values([1, 2, 3])
        with pytest.raises(OutOfBoundsError):
            tree.prefix_sum(3)
        with pytest.raises(OutOfBoundsError):
            tree.get(-1)

    def test_query_cost_is_logarithmic(self):
        """Paper: B^c access costs f * log_f k — node visits must be O(log k)."""
        tree = BcTree.from_values(list(range(4096)), fanout=4)
        tree.stats.reset()
        tree.prefix_sum(4095)
        # height <= ceil(log4(4096)) + 1 = 7
        assert tree.stats.node_visits <= math.ceil(math.log(4096, 2)) + 1


class TestPointUpdates:
    def test_add_updates_prefixes(self):
        values = [10, 20, 30, 40]
        tree = BcTree.from_values(values, fanout=3)
        tree.add(1, 5)
        assert tree.get(1) == 25
        assert tree.prefix_sum(0) == 10
        assert tree.prefix_sum(3) == 105
        tree.validate()

    def test_set_replaces_value(self):
        """The paper's update example: row 3 changes from 10 to 15."""
        tree = BcTree.from_values([14, 9, 10, 12, 8, 13], fanout=3)
        tree.set(2, 15)
        assert tree.get(2) == 15
        assert tree.prefix_sum(4) == 58  # 53 + 5
        tree.validate()

    def test_add_zero_is_free(self):
        tree = BcTree.from_values([1, 2, 3])
        before = tree.stats.snapshot()
        tree.add(1, 0)
        assert tree.stats.cell_writes == before.cell_writes

    def test_update_cost_one_sts_per_level(self):
        tree = BcTree.from_values(list(range(1024)), fanout=4)
        tree.stats.reset()
        tree.add(512, 7)
        # one STS write per internal level plus the leaf write
        assert tree.stats.cell_writes <= tree.height()


class TestInsertDelete:
    def test_append_sequence(self):
        tree = BcTree(fanout=3)
        for value in range(50):
            tree.append(value)
            tree.validate()
        assert tree.to_list() == list(range(50))

    def test_insert_front(self):
        tree = BcTree(fanout=3)
        for value in range(30):
            tree.insert(0, value)
            tree.validate()
        assert tree.to_list() == list(reversed(range(30)))

    def test_insert_middle_matches_list(self):
        reference = []
        tree = BcTree(fanout=4)
        for step in range(60):
            index = (step * 7) % (len(reference) + 1)
            reference.insert(index, step)
            tree.insert(index, step)
        assert tree.to_list() == reference
        tree.validate()

    def test_insert_out_of_range(self):
        tree = BcTree.from_values([1, 2])
        with pytest.raises(OutOfBoundsError):
            tree.insert(3, 9)

    def test_delete_returns_value(self):
        tree = BcTree.from_values([5, 6, 7], fanout=3)
        assert tree.delete(1) == 6
        assert tree.to_list() == [5, 7]
        tree.validate()

    def test_delete_everything(self):
        tree = BcTree.from_values(list(range(40)), fanout=3)
        for _ in range(40):
            tree.delete(0)
            tree.validate()
        assert len(tree) == 0
        assert tree.total() == 0

    def test_delete_from_back(self):
        tree = BcTree.from_values(list(range(33)), fanout=4)
        for size in range(32, -1, -1):
            tree.delete(size)
            tree.validate()
        assert tree.to_list() == []

    def test_delete_out_of_range(self):
        tree = BcTree(fanout=3)
        with pytest.raises(OutOfBoundsError):
            tree.delete(0)

    def test_interleaved_insert_delete_prefix(self):
        reference = list(range(20))
        tree = BcTree.from_values(reference, fanout=3)
        operations = [
            ("insert", 5, 100),
            ("delete", 0, None),
            ("insert", 0, -7),
            ("delete", 10, None),
            ("insert", 18, 3),
        ]
        for op, index, value in operations:
            if op == "insert":
                reference.insert(index, value)
                tree.insert(index, value)
            else:
                reference.pop(index)
                tree.delete(index)
            tree.validate()
            for probe in range(0, len(reference), 3):
                assert tree.prefix_sum(probe) == reference_prefix(reference, probe)


class TestMemoryAndHeight:
    def test_memory_cells_counts_leaves_and_sts(self):
        tree = BcTree.from_values([1, 2, 3])
        assert tree.memory_cells() == 3  # single leaf, no internal nodes

    def test_height_grows_logarithmically(self):
        small = BcTree.from_values(list(range(4)), fanout=4)
        large = BcTree.from_values(list(range(4096)), fanout=4)
        assert small.height() == 1
        assert 5 <= large.height() <= 8


class TestBalancedChunks:
    @given(st.integers(0, 500), st.integers(3, 16))
    def test_chunk_fill_invariants(self, size, fanout):
        chunks = _balanced_chunks(list(range(size)), fanout)
        flattened = [item for chunk in chunks for item in chunk]
        assert flattened == list(range(size))
        if len(chunks) > 1:
            assert all(fanout // 2 <= len(chunk) <= fanout for chunk in chunks)


@st.composite
def tree_operations(draw):
    """A random sequence of B^c tree mutations."""
    operations = []
    size = draw(st.integers(0, 30))
    for _ in range(draw(st.integers(0, 40))):
        kind = draw(st.sampled_from(["insert", "delete", "add", "set"]))
        if kind == "insert":
            operations.append(("insert", draw(st.integers(0, 1000)), draw(st.integers(-50, 50))))
        elif kind == "delete":
            operations.append(("delete", draw(st.integers(0, 1000)), 0))
        else:
            operations.append((kind, draw(st.integers(0, 1000)), draw(st.integers(-50, 50))))
    return size, operations


class TestPropertyBased:
    @settings(max_examples=150, deadline=None)
    @given(tree_operations(), st.integers(3, 8))
    def test_random_operation_sequences_match_list(self, scenario, fanout):
        """Whole-lifecycle equivalence against a plain Python list."""
        size, operations = scenario
        reference = list(range(size))
        tree = BcTree.from_values(reference, fanout=fanout)
        for kind, position, value in operations:
            if kind == "insert":
                index = position % (len(reference) + 1)
                reference.insert(index, value)
                tree.insert(index, value)
            elif kind == "delete":
                if not reference:
                    continue
                index = position % len(reference)
                assert tree.delete(index) == reference.pop(index)
            elif kind == "add":
                if not reference:
                    continue
                index = position % len(reference)
                reference[index] += value
                tree.add(index, value)
            else:  # set
                if not reference:
                    continue
                index = position % len(reference)
                reference[index] = value
                tree.set(index, value)
        tree.validate()
        assert tree.to_list() == reference
        assert tree.total() == sum(reference)
        for index in range(len(reference)):
            assert tree.prefix_sum(index) == reference_prefix(reference, index)

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.integers(-1000, 1000), max_size=200), st.integers(3, 16))
    def test_bulk_build_equals_incremental_appends(self, values, fanout):
        bulk = BcTree.from_values(values, fanout=fanout)
        incremental = BcTree(fanout=fanout)
        for value in values:
            incremental.append(value)
        assert bulk.to_list() == incremental.to_list()
        bulk.validate()
        incremental.validate()


class TestValidateDetectsCorruption:
    def test_corrupted_sum_cache_detected(self):
        tree = BcTree.from_values(list(range(64)), fanout=4)
        node = tree._root
        node.sums[0] += 1  # sabotage
        with pytest.raises(StructureError):
            tree.validate()

    def test_corrupted_count_cache_detected(self):
        tree = BcTree.from_values(list(range(64)), fanout=4)
        tree._root.counts[0] -= 1
        with pytest.raises(StructureError):
            tree.validate()
