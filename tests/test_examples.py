"""Smoke tests: every example script runs to completion.

The examples are part of the public deliverable; each must execute
end-to-end on a clean checkout.  They are run in-process (``runpy``)
with stdout captured, and a few load-bearing lines of their output are
asserted so a silently-degenerate example fails loudly.
"""

from __future__ import annotations

import pathlib
import runpy

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"

EXPECTED_OUTPUT = {
    "quickstart.py": ["All methods agree after the update"],
    "sales_olap.py": ["Paper query", "December sales by age band"],
    "star_catalog.py": ["domain doublings", "box beyond the data : 0"],
    "earth_observation.py": ["cattle ranch", "northern hemisphere"],
    "interactive_whatif.py": ["identical query results"],
    "method_advisor.py": ["star catalog", "-> ddc"],
    "cube_lifecycle.py": ["persisted", "reopened from disk"],
}


def test_every_example_is_covered():
    scripts = {path.name for path in EXAMPLES_DIR.glob("*.py")}
    assert scripts == set(EXPECTED_OUTPUT), (
        "examples/ and the smoke-test table are out of sync"
    )


@pytest.mark.parametrize("script", sorted(EXPECTED_OUTPUT))
def test_example_runs(script, capsys, monkeypatch):
    monkeypatch.chdir(EXAMPLES_DIR.parent)
    runpy.run_path(str(EXAMPLES_DIR / script), run_name="__main__")
    output = capsys.readouterr().out
    for marker in EXPECTED_OUTPUT[script]:
        assert marker in output, f"{script}: expected {marker!r} in output"
