"""Tests for the engine's fault-tolerance layer (``repro.engine.resilience``).

Everything runs on a :class:`~repro.obs.clock.ManualClock`: latency
spikes, stuck-shard hangs, backoff sleeps, and breaker cooldowns all
burn *virtual* time, so each scenario — including the full chaos soak —
is deterministic and instant.

The load-bearing acceptance property: with the FaultInjector perturbing
at least 20% of shard sub-operations, every non-degraded engine answer
equals the unsharded reference, and every degraded answer is explicitly
marked (``partial=True`` with its missing shards named).
"""

from __future__ import annotations

import random
import threading

import numpy as np
import pytest

from repro.engine import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    CircuitBreaker,
    Deadline,
    FaultInjector,
    FaultScript,
    PartialResult,
    ResiliencePolicy,
    SerialExecutor,
    ShardedEngine,
    ThreadedExecutor,
    is_partial,
)
from repro.exceptions import (
    CircuitOpenError,
    ConfigurationError,
    DeadlineExceededError,
    InjectedFaultError,
    ResilienceError,
    ShardFailedError,
)
from repro.methods import build_method
from repro.obs import ManualClock, Observability
from repro.workloads import (
    PointUpdate,
    RangeQuery,
    clustered,
    interleaved,
    random_updates,
    straddling_ranges,
)


def make_engine(data, *, policy, injector_kwargs=None, shards=4, cache=64):
    """Engine + injector + clock wired for one deterministic scenario."""
    clock = ManualClock()
    obs = Observability(clock=clock)
    injector = FaultInjector(SerialExecutor(), clock=clock, **(injector_kwargs or {}))
    engine = ShardedEngine.from_array(
        data,
        shards=shards,
        cache_size=cache,
        obs=obs,
        resilience=policy,
        executor=injector,
    )
    return engine, injector, clock, obs


class TestResiliencePolicy:
    def test_defaults_validate(self):
        policy = ResiliencePolicy()
        assert policy.degradation == "strict"
        assert policy.deadline_seconds is None

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"deadline_seconds": 0.0},
            {"deadline_seconds": -1.0},
            {"max_retries": -1},
            {"backoff_base": -0.1},
            {"backoff_multiplier": 0.5},
            {"jitter": -0.1},
            {"breaker_window": -1},
            {"breaker_failure_threshold": 0.0},
            {"breaker_failure_threshold": 1.5},
            {"degradation": "shrug"},
        ],
    )
    def test_rejects_bad_configuration(self, kwargs):
        with pytest.raises(ConfigurationError):
            ResiliencePolicy(**kwargs)

    def test_backoff_grows_exponentially_and_caps(self):
        policy = ResiliencePolicy(
            backoff_base=0.01, backoff_multiplier=2.0, backoff_cap=0.05, jitter=0.0
        )
        rng = random.Random(0)
        sleeps = [policy.backoff(i, rng) for i in range(6)]
        assert sleeps[:3] == [0.01, 0.02, 0.04]
        assert all(s == 0.05 for s in sleeps[3:])

    def test_backoff_jitter_is_seeded_and_bounded(self):
        policy = ResiliencePolicy(backoff_base=0.01, jitter=0.5, backoff_cap=1.0)
        a = [policy.backoff(0, random.Random(7)) for _ in range(3)]
        b = [policy.backoff(0, random.Random(7)) for _ in range(3)]
        assert a == b  # same seed, same jitter stream
        assert all(0.01 <= s <= 0.015 for s in a)


class TestDeadline:
    def test_no_budget_means_no_deadline(self):
        assert Deadline.after(ManualClock(), None) is None

    def test_remaining_and_expiry_follow_the_clock(self):
        clock = ManualClock()
        deadline = Deadline.after(clock, 1.0)
        assert deadline.remaining(clock) == pytest.approx(1.0)
        clock.advance(0.75)
        assert deadline.remaining(clock) == pytest.approx(0.25)
        assert not deadline.expired(clock)
        clock.advance(0.25)
        assert deadline.expired(clock)
        assert deadline.remaining(clock) == 0.0


class TestCircuitBreaker:
    def policy(self, **kwargs):
        defaults = dict(
            breaker_window=4,
            breaker_failure_threshold=0.5,
            breaker_cooldown_seconds=5.0,
        )
        defaults.update(kwargs)
        return ResiliencePolicy(**defaults)

    def test_stays_closed_below_threshold(self):
        breaker = CircuitBreaker(self.policy())
        for i in range(8):
            if i % 4 == 0:
                breaker.record_failure(0.0)
            else:
                breaker.record_success(0.0)
        assert breaker.state == BREAKER_CLOSED

    def test_opens_when_window_full_and_failing(self):
        breaker = CircuitBreaker(self.policy())
        breaker.record_failure(0.0)
        assert breaker.state == BREAKER_CLOSED  # window not full yet
        for _ in range(3):
            breaker.record_failure(0.0)
        assert breaker.state == BREAKER_OPEN
        assert not breaker.allow(1.0)  # cooldown not elapsed

    def test_open_half_open_closed_recovery(self):
        """The full state-machine round trip, on deterministic time."""
        breaker = CircuitBreaker(self.policy())
        for _ in range(4):
            breaker.record_failure(0.0)
        assert breaker.state == BREAKER_OPEN
        # After the cooldown exactly one probe is admitted.
        assert breaker.allow(5.0)
        assert breaker.state == BREAKER_HALF_OPEN
        assert not breaker.allow(5.0)  # second caller during the probe
        breaker.record_success(5.0)
        assert breaker.state == BREAKER_CLOSED
        assert breaker.failure_rate() == 0.0  # window reset

    def test_half_open_failure_rearms_the_cooldown(self):
        breaker = CircuitBreaker(self.policy())
        for _ in range(4):
            breaker.record_failure(0.0)
        assert breaker.allow(5.0)
        breaker.record_failure(5.0)
        assert breaker.state == BREAKER_OPEN
        assert not breaker.allow(9.0)  # new cooldown runs from t=5
        assert breaker.allow(10.0)
        assert breaker.state == BREAKER_HALF_OPEN

    def test_window_zero_disables_the_breaker(self):
        breaker = CircuitBreaker(self.policy(breaker_window=0))
        for _ in range(20):
            breaker.record_failure(0.0)
        assert breaker.state == BREAKER_CLOSED
        assert breaker.allow(0.0)

    def test_gauge_values_order_by_severity(self):
        breaker = CircuitBreaker(self.policy())
        assert breaker.gauge_value == 0
        for _ in range(4):
            breaker.record_failure(0.0)
        assert breaker.gauge_value == 2
        breaker.allow(5.0)
        assert breaker.gauge_value == 1


class TestPartialResult:
    def test_marked_and_numeric(self):
        value = PartialResult(42, missing_shards=[2, 0])
        assert is_partial(value)
        assert value.partial is True
        assert value.missing_shards == (0, 2)
        assert int(value) == 42
        assert float(value) == 42.0
        assert value == 42
        assert value + 1 == 43
        assert 1 + value == 43

    def test_plain_numbers_are_not_partial(self):
        assert not is_partial(42)
        assert not is_partial(np.int64(42))
        assert not is_partial(None)


class TestFaultInjector:
    def task(self, item):
        return item[0] * 10

    def test_rates_validated(self):
        with pytest.raises(ConfigurationError):
            FaultInjector(SerialExecutor(), ManualClock(), fault_rate=1.5)

    def test_deterministic_across_runs(self):
        outcomes = []
        for _ in range(2):
            injector = FaultInjector(
                SerialExecutor(), ManualClock(), seed=3, fault_rate=0.5
            )
            run = injector.try_map(self.task, [(i,) for i in range(20)])
            outcomes.append([error is None for _, error in run])
        assert outcomes[0] == outcomes[1]
        assert injector.injected["fault"] > 0

    def test_scripts_fail_exactly_n_then_recover(self):
        injector = FaultInjector(
            SerialExecutor(),
            ManualClock(),
            scripts={0: FaultScript(fail_next=2)},
        )
        items = [(0,)] * 4
        errors = [error for _, error in injector.try_map(self.task, items)]
        assert [isinstance(e, InjectedFaultError) for e in errors] == [
            True, True, False, False,
        ]
        assert injector.injected["script"] == 2

    def test_hang_burns_virtual_time_then_fails(self):
        clock = ManualClock()
        injector = FaultInjector(
            SerialExecutor(), clock, hang_rate=1.0, hang_seconds=0.25
        )
        (result, error), = injector.try_map(self.task, [(0,)])
        assert result is None
        assert isinstance(error, InjectedFaultError)
        assert clock.now() == pytest.approx(0.25)

    def test_latency_spike_sleeps_but_succeeds(self):
        clock = ManualClock()
        injector = FaultInjector(
            SerialExecutor(), clock, latency_rate=1.0, latency_seconds=0.02
        )
        (result, error), = injector.try_map(self.task, [(3,)])
        assert (result, error) == (30, None)
        assert clock.now() == pytest.approx(0.02)

    def test_report_tallies(self):
        injector = FaultInjector(
            SerialExecutor(), ManualClock(), seed=1, fault_rate=0.4
        )
        injector.try_map(self.task, [(i,) for i in range(50)])
        report = injector.report()
        assert report["calls"] == 50
        assert report["injected_total"] == report["injected_fault"]
        assert report["injected_rate"] == pytest.approx(
            report["injected_total"] / 50
        )


class TestExecutorFailurePaths:
    """``try_map`` semantics both executors must share (satellite: the
    failure paths the resilient fan-out is built on)."""

    def boom(self, item):
        if item == 13:
            raise RuntimeError("boom")
        return item * 2

    @pytest.mark.parametrize("executor_factory", [
        SerialExecutor,
        lambda: ThreadedExecutor(workers=3),
    ])
    def test_one_raising_item_never_aborts_siblings(self, executor_factory):
        executor = executor_factory()
        try:
            outcomes = executor.try_map(self.boom, [1, 13, 5])
            assert [r for r, _ in outcomes] == [2, None, 10]
            errors = [e for _, e in outcomes]
            assert errors[0] is None and errors[2] is None
            assert isinstance(errors[1], RuntimeError)
        finally:
            executor.shutdown()

    def test_map_still_propagates_first_error(self):
        with pytest.raises(RuntimeError):
            SerialExecutor().map(self.boom, [1, 13, 5])

    def test_serial_refuses_items_after_budget_spent(self):
        clock = ManualClock()

        def slow(item):
            clock.advance(0.6)
            return item

        outcomes = SerialExecutor().try_map(
            slow, [1, 2, 3], timeout=1.0, clock=clock
        )
        assert outcomes[0] == (1, None)
        assert outcomes[1] == (2, None)  # started at t=0.6 < deadline
        result, error = outcomes[2]
        assert result is None
        assert isinstance(error, DeadlineExceededError)

    def test_threaded_timeout_abandons_a_stuck_task(self):
        """A genuinely hung callable (real threads, real clock) comes
        back as a DeadlineExceededError outcome without stalling the
        healthy siblings forever."""
        unstick = threading.Event()

        def maybe_hang(item):
            if item == "stuck":
                unstick.wait(timeout=30)
            return item

        executor = ThreadedExecutor(workers=2)
        try:
            outcomes = executor.try_map(
                maybe_hang, ["ok", "stuck"], timeout=0.2
            )
            assert outcomes[0] == ("ok", None)
            result, error = outcomes[1]
            assert result is None
            assert isinstance(error, DeadlineExceededError)
        finally:
            unstick.set()  # let the abandoned thread finish
            executor.shutdown()

    def test_outcomes_keep_submission_order(self):
        executor = ThreadedExecutor(workers=4)
        try:
            outcomes = executor.try_map(lambda i: i, list(range(16)))
            assert [r for r, _ in outcomes] == list(range(16))
        finally:
            executor.shutdown()


class TestEngineChaosCorrectness:
    """The acceptance criterion: >= 20% injected faults, zero silent lies."""

    SHAPE = (32, 32)

    def reference_stream(self, data, events):
        """Ground-truth answer per event from the unsharded method."""
        reference = build_method("ddc", data)
        expected = []
        for event in events:
            if isinstance(event, RangeQuery):
                expected.append(int(reference.range_sum(event.low, event.high)))
            else:
                reference.add(event.cell, event.delta)
                expected.append(None)
        return expected

    def chaos_stream(self, seed=0, count=150):
        data = clustered(self.SHAPE, seed=seed)
        reads = straddling_ranges(self.SHAPE, count * 3 // 4, shards=4, seed=seed + 1)
        writes = random_updates(self.SHAPE, count // 4, seed=seed + 2)
        events = list(interleaved(reads, writes, query_fraction=0.75, seed=seed + 3))
        return data, events, self.reference_stream(data, events)

    def test_fallback_mode_serves_exact_answers_under_faults(self):
        data, events, expected = self.chaos_stream()
        policy = ResiliencePolicy(max_retries=3, degradation="fallback", retry_seed=0)
        engine, injector, _, _ = make_engine(
            data, policy=policy, injector_kwargs={"seed": 0, "fault_rate": 0.3}
        )
        for event, want in zip(events, expected):
            if isinstance(event, PointUpdate):
                engine.add(event.cell, event.delta)
                continue
            got = engine.range_sum(event.low, event.high)
            assert not is_partial(got)
            assert int(got) == want
        assert injector.report()["injected_rate"] >= 0.20
        engine.close()

    def test_partial_mode_marks_every_degraded_answer(self):
        data, events, expected = self.chaos_stream(seed=5)
        policy = ResiliencePolicy(max_retries=0, degradation="partial", retry_seed=5)
        engine, injector, _, _ = make_engine(
            data,
            policy=policy,
            injector_kwargs={"seed": 5, "fault_rate": 0.3},
        )
        degraded = 0
        for event, want in zip(events, expected):
            if isinstance(event, PointUpdate):
                engine.add(event.cell, event.delta)
                continue
            got = engine.range_sum(event.low, event.high)
            if is_partial(got):
                degraded += 1
                assert got.missing_shards  # names its gaps
            else:
                assert int(got) == want  # non-degraded answers are exact
        assert degraded > 0
        assert injector.report()["injected_rate"] >= 0.20
        engine.close()

    def test_partial_value_is_the_sum_of_the_healthy_shards(self):
        """A partial answer must never silently drop a *healthy* shard's
        sub-range sum: value + missing shards' true sums == exact sum."""
        data = clustered(self.SHAPE, seed=9)
        policy = ResiliencePolicy(
            max_retries=0, degradation="partial", breaker_window=0
        )
        engine, _, _, _ = make_engine(
            data,
            policy=policy,
            injector_kwargs={"scripts": {1: FaultScript(fail_next=1)}},
            cache=0,
        )
        low, high = (0, 0), (self.SHAPE[0] - 1, self.SHAPE[1] - 1)
        got = engine.range_sum(low, high)
        assert is_partial(got) and got.missing_shards == (1,)
        span = engine.plan.spans[1]
        missing_true_sum = int(data[span.start : span.stop].sum())
        assert int(got) + missing_true_sum == int(data.sum())
        engine.close()

    def test_partial_results_are_never_cached(self):
        data = clustered(self.SHAPE, seed=2)
        policy = ResiliencePolicy(
            max_retries=0, degradation="partial", breaker_window=0
        )
        engine, _, _, _ = make_engine(
            data,
            policy=policy,
            injector_kwargs={"scripts": {0: FaultScript(fail_next=1)}},
        )
        low, high = (0, 0), (self.SHAPE[0] - 1, 5)
        first = engine.range_sum(low, high)
        assert is_partial(first)
        second = engine.range_sum(low, high)  # script exhausted: recomputes
        assert not is_partial(second)
        assert int(second) == int(clustered(self.SHAPE, seed=2)[:, :6].sum())
        engine.close()

    def test_strict_mode_raises_shard_failed(self):
        data = clustered(self.SHAPE, seed=3)
        policy = ResiliencePolicy(
            max_retries=1, degradation="strict", breaker_window=0
        )
        engine, _, _, _ = make_engine(
            data,
            policy=policy,
            injector_kwargs={"scripts": {0: FaultScript(fail_next=10)}},
        )
        with pytest.raises(ShardFailedError) as excinfo:
            engine.range_sum((0, 0), (self.SHAPE[0] - 1, 3))
        assert isinstance(excinfo.value, ResilienceError)
        engine.close()

    def test_deadline_budget_turns_hangs_into_timeouts(self):
        data = clustered(self.SHAPE, seed=4)
        policy = ResiliencePolicy(
            deadline_seconds=0.05,
            max_retries=5,
            degradation="strict",
            breaker_window=0,
        )
        engine, _, clock, obs = make_engine(
            data,
            policy=policy,
            injector_kwargs={"hang_rate": 1.0, "hang_seconds": 0.03},
        )
        with pytest.raises(DeadlineExceededError):
            engine.range_sum((0, 0), (self.SHAPE[0] - 1, 3))
        timeouts = obs.metrics.counter("repro_engine_timeouts_total", "")
        assert timeouts.value > 0
        assert clock.now() >= 0.05  # the budget was actually burned
        engine.close()

    def test_retries_recover_transient_faults_and_are_counted(self):
        data = clustered(self.SHAPE, seed=6)
        policy = ResiliencePolicy(
            max_retries=2, degradation="strict", breaker_window=0,
            backoff_base=0.01, jitter=0.0,
        )
        engine, injector, clock, obs = make_engine(
            data,
            policy=policy,
            injector_kwargs={"scripts": {0: FaultScript(fail_next=1)}},
        )
        got = engine.range_sum((0, 0), (self.SHAPE[0] - 1, 3))
        assert int(got) == int(clustered(self.SHAPE, seed=6)[:, :4].sum())
        retries = obs.metrics.counter(
            "repro_engine_retries_total", "", labels=("shard",)
        )
        assert retries.labels(shard="0").value == 1
        assert clock.now() >= 0.01  # one backoff sleep happened
        engine.close()


class TestEngineBreakerLifecycle:
    """Breaker opens under scripted faults, then half-open-recovers —
    fully deterministic on the ManualClock."""

    SHAPE = (32, 8)

    def breaker_engine(self):
        data = clustered(self.SHAPE, seed=0)
        policy = ResiliencePolicy(
            max_retries=0,
            degradation="partial",
            breaker_window=2,
            breaker_failure_threshold=1.0,
            breaker_cooldown_seconds=5.0,
        )
        return make_engine(
            data,
            policy=policy,
            injector_kwargs={"scripts": {0: FaultScript(fail_next=2)}},
            cache=0,
        )

    def read(self, engine):
        return engine.range_sum((0, 0), (self.SHAPE[0] - 1, self.SHAPE[1] - 1))

    def state_of(self, engine, shard):
        return engine.resilience_info()["breakers"][shard]["state"]

    def test_open_then_half_open_probe_recovers(self):
        engine, injector, clock, obs = self.breaker_engine()
        # Two scripted failures fill the window and trip the breaker.
        assert is_partial(self.read(engine))
        assert self.state_of(engine, 0) == BREAKER_CLOSED
        assert is_partial(self.read(engine))
        assert self.state_of(engine, 0) == BREAKER_OPEN
        # While open the shard is refused without being attempted.
        calls_before = injector.calls
        degraded = self.read(engine)
        assert is_partial(degraded) and degraded.missing_shards == (0,)
        # Shard 0 never reached the executor: only the other shards ran.
        assert injector.calls == calls_before + engine.plan.count - 1
        # After the cooldown the next read sends a half-open probe; the
        # script is exhausted, so the probe succeeds and the breaker
        # closes — and the answer is exact again.
        clock.advance(5.0)
        recovered = self.read(engine)
        assert not is_partial(recovered)
        assert self.state_of(engine, 0) == BREAKER_CLOSED
        engine.close()

    def test_breaker_transitions_and_state_gauge_emitted(self):
        engine, _, clock, obs = self.breaker_engine()
        self.read(engine)
        self.read(engine)  # trips open
        clock.advance(5.0)
        self.read(engine)  # half-open probe, closes
        transitions = obs.metrics.counter(
            "repro_engine_breaker_transitions_total", "", labels=("shard", "to")
        )
        assert transitions.labels(shard="0", to=BREAKER_OPEN).value == 1
        assert transitions.labels(shard="0", to=BREAKER_HALF_OPEN).value == 1
        assert transitions.labels(shard="0", to=BREAKER_CLOSED).value == 1
        gauge = obs.metrics.gauge(
            "repro_engine_breaker_state", "", labels=("shard",)
        )
        assert gauge.labels(shard="0").value == 0  # closed again
        engine.close()

    def test_open_breaker_in_strict_mode_raises_circuit_open(self):
        data = clustered(self.SHAPE, seed=0)
        policy = ResiliencePolicy(
            max_retries=0,
            degradation="strict",
            breaker_window=2,
            breaker_failure_threshold=1.0,
            breaker_cooldown_seconds=5.0,
        )
        engine, _, _, _ = make_engine(
            data,
            policy=policy,
            injector_kwargs={"scripts": {0: FaultScript(fail_next=2)}},
            cache=0,
        )
        for _ in range(2):
            with pytest.raises(ShardFailedError):
                self.read(engine)
        with pytest.raises(ShardFailedError) as excinfo:
            self.read(engine)
        assert isinstance(excinfo.value.__cause__, CircuitOpenError)
        engine.close()


class TestResilienceInfo:
    def test_none_without_policy(self):
        engine = ShardedEngine((16, 4), shards=2)
        assert engine.resilience_info() is None
        engine.close()

    def test_reports_policy_and_breakers(self):
        policy = ResiliencePolicy(degradation="partial", max_retries=1)
        engine = ShardedEngine((16, 4), shards=2, resilience=policy)
        info = engine.resilience_info()
        assert info["degradation"] == "partial"
        assert info["max_retries"] == 1
        assert [b["shard"] for b in info["breakers"]] == [0, 1]
        assert all(b["state"] == BREAKER_CLOSED for b in info["breakers"])
        engine.close()

    def test_resilient_engine_matches_reference_without_faults(self):
        """Policy attached but nothing failing: byte-identical serving."""
        data = clustered((24, 24), seed=8)
        policy = ResiliencePolicy(degradation="strict", max_retries=2)
        engine = ShardedEngine.from_array(
            data, shards=3, cache_size=32, resilience=policy
        )
        reference = build_method("ddc", data)
        for query in straddling_ranges((24, 24), 30, shards=3, seed=11):
            assert int(engine.range_sum(query.low, query.high)) == int(
                reference.range_sum(query.low, query.high)
            )
        engine.close()
