"""Tests for the synthetic workload generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.workloads import (
    PointUpdate,
    RangeQuery,
    clustered,
    dense_uniform,
    growth_stream,
    hot_region_updates,
    interleaved,
    occupancy,
    prefix_cells,
    random_ranges,
    random_updates,
    read_write_stream,
    sparse_uniform,
    worst_case_update,
    zipf_skewed,
)


class TestDataGenerators:
    def test_dense_uniform_shape_and_range(self):
        cube = dense_uniform((10, 12), low=5, high=8, seed=1)
        assert cube.shape == (10, 12)
        assert cube.min() >= 5 and cube.max() < 8

    def test_determinism(self):
        assert np.array_equal(dense_uniform((8, 8), seed=3), dense_uniform((8, 8), seed=3))
        assert not np.array_equal(
            dense_uniform((8, 8), seed=3), dense_uniform((8, 8), seed=4)
        )

    def test_sparse_density_respected(self):
        cube = sparse_uniform((100, 100), density=0.05, seed=2)
        assert 0.02 < occupancy(cube) < 0.08

    def test_sparse_density_validation(self):
        with pytest.raises(ValueError):
            sparse_uniform((4, 4), density=1.5)

    def test_clustered_is_clustered(self):
        """Most mass must sit inside a small fraction of the domain."""
        cube = clustered((128, 128), clusters=3, points_per_cluster=300, seed=5)
        assert 0 < occupancy(cube) < 0.25
        # mass concentration: top 5% of cells carry > 60% of the total
        flat = np.sort(cube.ravel())[::-1]
        top = flat[: max(1, flat.size // 20)].sum()
        assert top / max(cube.sum(), 1) > 0.6

    def test_zipf_concentrates_near_origin(self):
        cube = zipf_skewed((64, 64), exponent=1.5, records=2000, seed=6)
        origin_mass = cube[:16, :16].sum()
        assert origin_mass > cube.sum() * 0.5

    def test_occupancy_bounds(self):
        assert occupancy(np.zeros((4, 4))) == 0.0
        assert occupancy(np.ones((4, 4))) == 1.0


class TestGrowthStream:
    def test_length_and_determinism(self):
        first = list(growth_stream(2, points=100, seed=7))
        second = list(growth_stream(2, points=100, seed=7))
        assert len(first) == 100
        assert first == second

    def test_reaches_negative_coordinates(self):
        coordinates = [d.coordinate for d in growth_stream(2, points=2000, seed=8)]
        xs = [c[0] for c in coordinates]
        ys = [c[1] for c in coordinates]
        assert min(xs) < 0 or min(ys) < 0

    def test_values_positive(self):
        assert all(d.value > 0 for d in growth_stream(3, points=50, seed=9))


class TestQueryWorkloads:
    def test_random_ranges_valid(self):
        for query in random_ranges((20, 30), 50, seed=10):
            assert all(0 <= lo <= hi < s for lo, hi, s in zip(query.low, query.high, (20, 30)))

    def test_selectivity_controls_extent(self):
        queries = random_ranges((100, 100), 20, selectivity=0.25, seed=11)
        for query in queries:
            for lo, hi in zip(query.low, query.high):
                assert hi - lo + 1 == 25

    def test_prefix_cells_in_bounds(self):
        for cell in prefix_cells((5, 6, 7), 30, seed=12):
            assert all(0 <= c < s for c, s in zip(cell, (5, 6, 7)))

    def test_random_updates_nonzero(self):
        updates = random_updates((8, 8), 40, seed=13)
        assert len(updates) == 40
        assert all(u.delta != 0 for u in updates)

    def test_worst_case_update_is_origin(self):
        update = worst_case_update((9, 9, 9))
        assert update.cell == (0, 0, 0)
        assert update.delta == 1

    def test_hot_region_skew(self):
        updates = hot_region_updates((100, 100), 500, hot_fraction=0.1, seed=14)
        hot = sum(1 for u in updates if all(c < 10 for c in u.cell))
        assert hot > 350  # ~90% expected

    def test_interleaved_preserves_all_operations(self):
        queries = random_ranges((8, 8), 10, seed=15)
        updates = random_updates((8, 8), 15, seed=16)
        stream = list(interleaved(queries, updates, seed=17))
        assert len(stream) == 25
        assert sum(isinstance(op, RangeQuery) for op in stream) == 10
        assert sum(isinstance(op, PointUpdate) for op in stream) == 15


class TestReadWriteStream:
    def test_mix_controls_read_fraction(self):
        events = read_write_stream((32, 32), 400, mix=0.9, seed=20)
        reads = sum(isinstance(op, RangeQuery) for op in events)
        assert len(events) == 400
        assert 0.84 < reads / 400 < 0.96

    def test_all_events_in_bounds(self):
        for op in read_write_stream((16, 24), 200, mix=0.5, seed=21):
            if isinstance(op, RangeQuery):
                assert all(
                    0 <= lo <= hi < s
                    for lo, hi, s in zip(op.low, op.high, (16, 24))
                )
            else:
                assert all(0 <= c < s for c, s in zip(op.cell, (16, 24)))
                assert op.delta != 0

    def test_finite_pool_produces_repeats(self):
        """Reads draw from a finite pool, so a result cache sees repeats."""
        events = read_write_stream((64, 64), 300, mix=1.0, pool=8, seed=22)
        distinct = {(op.low, op.high) for op in events}
        assert len(distinct) <= 8
        assert len(events) == 300

    def test_zipf_locality_skews_toward_hot_queries(self):
        events = read_write_stream(
            (64, 64), 500, mix=1.0, locality="zipf", pool=32, seed=23
        )
        from collections import Counter

        counts = Counter((op.low, op.high) for op in events)
        top_two = sum(count for _, count in counts.most_common(2))
        assert top_two > 500 * 0.3

    def test_determinism(self):
        first = read_write_stream((16, 16), 100, mix=0.7, seed=24)
        second = read_write_stream((16, 16), 100, mix=0.7, seed=24)
        assert first == second

    def test_validation(self):
        with pytest.raises(ValueError):
            read_write_stream((8, 8), 10, mix=1.5)
        with pytest.raises(ValueError):
            read_write_stream((8, 8), 10, locality="nope")
        with pytest.raises(ValueError):
            read_write_stream((8, 8), 10, pool=0)
