"""Tests for batch updates (``add_many``) across all methods."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.methods import (
    FenwickCube,
    NaiveArray,
    PrefixSumCube,
    RelativePrefixSumCube,
    method_class,
    method_names,
)
from repro.workloads import dense_uniform, random_updates


class TestSemantics:
    @pytest.fixture(params=["naive", "ps", "rps", "fenwick", "basic-ddc", "ddc"])
    def method(self, request):
        data = dense_uniform((16, 16), seed=1)
        return method_class(request.param).from_array(data)

    def test_batch_equals_sequential(self, method):
        updates = [(u.cell, u.delta) for u in random_updates((16, 16), 30, seed=2)]
        sequential = method_class(method.name).from_array(method.to_dense())
        for cell, delta in updates:
            sequential.add(cell, delta)
        method.add_many(updates)
        assert np.array_equal(method.to_dense(), sequential.to_dense())
        assert method.total() == sequential.total()

    def test_empty_batch_is_noop(self, method):
        before = method.to_dense()
        method.add_many([])
        assert np.array_equal(method.to_dense(), before)

    def test_duplicate_cells_combine(self, method):
        start = method.get((3, 3))
        method.add_many([((3, 3), 5), ((3, 3), -2), ((3, 3), 1)])
        assert method.get((3, 3)) == start + 4

    def test_cancelling_batch_is_noop(self, method):
        before = method.to_dense()
        snapshot = method.stats.snapshot()
        method.add_many([((4, 4), 7), ((4, 4), -7)])
        assert np.array_equal(method.to_dense(), before)
        # The zero-delta update must be skipped entirely.
        assert method.stats.cell_writes == snapshot.cell_writes

    def test_out_of_bounds_cell_rejected(self, method):
        with pytest.raises(Exception):
            method.add_many([((99, 0), 1)])


class TestBatchCosts:
    def test_ps_batch_cost_independent_of_size(self):
        """One cube pass per batch: the batch-update economics of Section 1."""
        shape = (64, 64)
        data = dense_uniform(shape, seed=3)
        small_batch = [(u.cell, u.delta) for u in random_updates(shape, 4, seed=4)]
        large_batch = [(u.cell, u.delta) for u in random_updates(shape, 400, seed=5)]

        ps = PrefixSumCube.from_array(data)
        ps.stats.reset()
        ps.add_many(small_batch)
        small_cost = ps.stats.cell_writes

        ps = PrefixSumCube.from_array(data)
        ps.stats.reset()
        ps.add_many(large_batch)
        large_cost = ps.stats.cell_writes

        assert small_cost == large_cost == 64 * 64

    def test_ps_single_update_batch_uses_point_path(self):
        ps = PrefixSumCube.from_array(dense_uniform((64, 64), seed=6))
        ps.stats.reset()
        ps.add_many([((63, 63), 5)])
        assert ps.stats.cell_writes == 1

    def test_ps_batch_beats_sequential(self):
        shape = (64, 64)
        data = dense_uniform(shape, seed=7)
        updates = [(u.cell, u.delta) for u in random_updates(shape, 100, seed=8)]

        batched = PrefixSumCube.from_array(data)
        batched.stats.reset()
        batched.add_many(updates)

        sequential = PrefixSumCube.from_array(data)
        sequential.stats.reset()
        for cell, delta in updates:
            sequential.add(cell, delta)

        assert batched.stats.cell_writes < sequential.stats.cell_writes / 10
        assert np.array_equal(batched.to_dense(), sequential.to_dense())

    def test_fenwick_adaptive_small_batch(self):
        fenwick = FenwickCube.from_array(dense_uniform((64, 64), seed=9))
        fenwick.stats.reset()
        fenwick.add_many([((10, 10), 1), ((20, 20), 2)])
        # Two point updates, far below a full rebuild pass.
        assert fenwick.stats.cell_writes < 200

    def test_fenwick_adaptive_large_batch(self):
        shape = (16, 16)
        fenwick = FenwickCube.from_array(dense_uniform(shape, seed=10))
        updates = [((x, y), 1) for x in range(16) for y in range(16)]
        fenwick.stats.reset()
        fenwick.add_many(updates)
        # One rebuild pass (n^d writes) rather than 256 * log^2 n.
        assert fenwick.stats.cell_writes == 16 * 16

    def test_rps_batch_path_correct(self):
        shape = (64, 64)
        data = dense_uniform(shape, seed=11)
        updates = [(u.cell, u.delta) for u in random_updates(shape, 300, seed=12)]
        rps = RelativePrefixSumCube.from_array(data)
        rps.add_many(updates)
        oracle = NaiveArray.from_array(data)
        for cell, delta in updates:
            oracle.add(cell, delta)
        assert np.array_equal(rps.to_dense(), oracle.to_dense())


class TestPropertyBased:
    @settings(max_examples=30, deadline=None)
    @given(
        name=st.sampled_from(["ps", "rps", "fenwick", "ddc"]),
        seed=st.integers(0, 2**31),
        batch_size=st.integers(0, 60),
    )
    def test_batch_matches_oracle(self, name, seed, batch_size):
        rng = np.random.default_rng(seed)
        shape = (int(rng.integers(2, 20)), int(rng.integers(2, 20)))
        data = rng.integers(-9, 10, size=shape)
        updates = [
            (
                tuple(int(rng.integers(0, s)) for s in shape),
                int(rng.integers(-9, 10)),
            )
            for _ in range(batch_size)
        ]
        method = method_class(name).from_array(data)
        method.add_many(updates)
        oracle = NaiveArray.from_array(data)
        for cell, delta in updates:
            oracle.add(cell, delta)
        assert np.array_equal(method.to_dense(), oracle.to_dense())
