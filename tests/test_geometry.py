"""Unit and property tests for repro.geometry."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import geometry
from repro.exceptions import (
    DimensionMismatchError,
    InvalidRangeError,
    InvalidShapeError,
    OutOfBoundsError,
)


class TestNormalizeShape:
    def test_tuple_round_trip(self):
        assert geometry.normalize_shape([3, 4, 5]) == (3, 4, 5)

    def test_accepts_numpy_ints(self):
        assert geometry.normalize_shape(np.array([2, 3])) == (2, 3)

    def test_rejects_empty(self):
        with pytest.raises(InvalidShapeError):
            geometry.normalize_shape([])

    @pytest.mark.parametrize("bad", [0, -1])
    def test_rejects_non_positive(self, bad):
        with pytest.raises(InvalidShapeError):
            geometry.normalize_shape([4, bad])


class TestNormalizeCell:
    def test_valid_cell(self):
        assert geometry.normalize_cell((1, 2), (3, 3)) == (1, 2)

    def test_bare_int_for_one_dim(self):
        assert geometry.normalize_cell(4, (10,)) == (4,)

    def test_dimension_mismatch(self):
        with pytest.raises(DimensionMismatchError):
            geometry.normalize_cell((1, 2, 3), (3, 3))

    @pytest.mark.parametrize("cell", [(-1, 0), (0, 3), (3, 0)])
    def test_out_of_bounds(self, cell):
        with pytest.raises(OutOfBoundsError):
            geometry.normalize_cell(cell, (3, 3))


class TestNormalizeRange:
    def test_valid_range(self):
        assert geometry.normalize_range((0, 1), (2, 2), (3, 3)) == ((0, 1), (2, 2))

    def test_single_cell_range(self):
        assert geometry.normalize_range((1, 1), (1, 1), (3, 3)) == ((1, 1), (1, 1))

    def test_inverted_range_rejected(self):
        with pytest.raises(InvalidRangeError):
            geometry.normalize_range((2, 0), (1, 2), (3, 3))


class TestRangeCellCount:
    def test_single_cell(self):
        assert geometry.range_cell_count((1, 1), (1, 1)) == 1

    def test_rectangle(self):
        assert geometry.range_cell_count((0, 0), (2, 3)) == 12

    @given(
        st.lists(
            st.tuples(st.integers(0, 20), st.integers(0, 20)).map(
                lambda pair: (min(pair), max(pair))
            ),
            min_size=1,
            max_size=4,
        )
    )
    def test_matches_enumeration(self, ranges):
        low = tuple(lo for lo, _ in ranges)
        high = tuple(hi for _, hi in ranges)
        count = geometry.range_cell_count(low, high)
        assert count == sum(1 for _ in geometry.iter_cells(low, high))


class TestIterCells:
    def test_row_major_order(self):
        cells = list(geometry.iter_cells((0, 0), (1, 1)))
        assert cells == [(0, 0), (0, 1), (1, 0), (1, 1)]

    def test_one_dimension(self):
        assert list(geometry.iter_cells((2,), (4,))) == [(2,), (3,), (4,)]


class TestInclusionExclusion:
    def test_two_dim_interior_range(self):
        """The Figure 4 identity in its textbook 2-d form."""
        terms = dict()
        for sign, corner in geometry.inclusion_exclusion_corners((2, 3), (5, 6)):
            terms[corner] = sign
        assert terms == {(5, 6): 1, (1, 6): -1, (5, 2): -1, (1, 2): 1}

    def test_origin_anchored_range_collapses(self):
        terms = list(geometry.inclusion_exclusion_corners((0, 0), (4, 4)))
        non_empty = [(s, c) for s, c in terms if c is not None]
        assert non_empty == [(1, (4, 4))]

    @given(
        st.integers(1, 4).flatmap(
            lambda d: st.tuples(
                st.lists(st.integers(1, 6), min_size=d, max_size=d),
                st.integers(0, 10**6),
            )
        )
    )
    def test_identity_against_dense_array(self, params):
        """Range sum via corners equals direct summation, for random arrays."""
        shape, seed = params
        rng = np.random.default_rng(seed)
        array = rng.integers(0, 10, size=tuple(shape))
        low = tuple(int(rng.integers(0, s)) for s in shape)
        high = tuple(int(rng.integers(lo, s)) for lo, s in zip(low, shape))
        prefix = array.copy()
        for axis in range(array.ndim):
            prefix = np.cumsum(prefix, axis=axis)
        total = 0
        for sign, corner in geometry.inclusion_exclusion_corners(low, high):
            if corner is not None:
                total += sign * prefix[corner]
        region = tuple(slice(lo, hi + 1) for lo, hi in zip(low, high))
        assert total == array[region].sum()


class TestPowersOfTwo:
    @pytest.mark.parametrize(
        "value,expected", [(0, 1), (1, 1), (2, 2), (3, 4), (4, 4), (5, 8), (1023, 1024)]
    )
    def test_next_power_of_two(self, value, expected):
        assert geometry.next_power_of_two(value) == expected

    @pytest.mark.parametrize("value", [1, 2, 4, 1024])
    def test_is_power_of_two_true(self, value):
        assert geometry.is_power_of_two(value)

    @pytest.mark.parametrize("value", [0, -2, 3, 6, 1000])
    def test_is_power_of_two_false(self, value):
        assert not geometry.is_power_of_two(value)

    def test_padded_side_uses_largest_dim(self):
        assert geometry.padded_side((3, 9, 2)) == 16

    @given(st.integers(1, 10**6))
    def test_next_power_of_two_bounds(self, value):
        power = geometry.next_power_of_two(value)
        assert geometry.is_power_of_two(power)
        assert power >= value
        assert power < 2 * value or value == 1


class TestClampCell:
    def test_clamps_both_sides(self):
        assert geometry.clamp_cell((-3, 10), (4, 4)) == (0, 3)

    def test_identity_inside(self):
        assert geometry.clamp_cell((1, 2), (4, 4)) == (1, 2)
