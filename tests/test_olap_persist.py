"""Tests for whole-DataCube persistence (schema + companions)."""

from __future__ import annotations

import datetime

import pytest

from repro.olap import (
    BinnedDimension,
    CategoricalDimension,
    CubeSchema,
    DataCube,
    DateDimension,
    HierarchyDimension,
    IntegerDimension,
)
from repro.olap_persist import load_datacube, save_datacube
from repro.persist import PersistError

JAN1 = datetime.date(2025, 1, 1)


@pytest.fixture
def cube_path(tmp_path):
    return tmp_path / "datacube.npz"


def full_schema() -> CubeSchema:
    return CubeSchema(
        [
            IntegerDimension("age", 18, 60),
            DateDimension("date", JAN1, 90),
        ],
        measure="sales",
    )


class TestRoundTrips:
    def test_basic_round_trip(self, cube_path):
        cube = DataCube(full_schema(), method="ddc", track_sum_squares=True)
        cube.insert({"age": 30, "date": JAN1}, 10.0)
        cube.insert({"age": 40, "date": datetime.date(2025, 2, 2)}, 20.0)
        save_datacube(cube, cube_path)
        restored = load_datacube(cube_path)
        assert restored.method_name == "ddc"
        assert restored.schema.measure == "sales"
        assert restored.sum() == 30.0
        assert restored.count() == 2
        assert restored.variance() == pytest.approx(25.0)

    def test_restored_cube_stays_updatable(self, cube_path):
        cube = DataCube(full_schema(), method="ps")
        cube.insert({"age": 25, "date": JAN1}, 5.0)
        save_datacube(cube, cube_path)
        restored = load_datacube(cube_path)
        restored.insert({"age": 26, "date": JAN1}, 7.0)
        assert restored.sum() == 12.0
        assert restored.count() == 2

    def test_date_conditions_survive(self, cube_path):
        cube = DataCube(full_schema())
        cube.insert({"age": 30, "date": datetime.date(2025, 2, 14)}, 99.0)
        save_datacube(cube, cube_path)
        restored = load_datacube(cube_path)
        date_dim = restored.schema.dimension("date")
        assert restored.sum(date=date_dim.month(2025, 2)) == 99.0

    def test_every_dimension_type(self, cube_path):
        schema = CubeSchema(
            [
                IntegerDimension("age", 0, 9),
                CategoricalDimension("color", ["red", "green"]),
                BinnedDimension("weight", 0.0, 2.5, 4),
            ],
            measure="m",
        )
        cube = DataCube(schema, method="naive")
        cube.insert({"age": 3, "color": "green", "weight": 5.1}, 2.0)
        save_datacube(cube, cube_path)
        restored = load_datacube(cube_path)
        assert restored.sum(color="green") == 2.0
        assert restored.sum(weight=(5.0, 7.4)) == 2.0
        assert restored.sum(color="red") == 0.0

    def test_hierarchy_dimension(self, cube_path):
        geo = HierarchyDimension(
            "geo", {"emea": {"de": ["berlin"], "fr": ["paris"]}, "amer": {"us": ["nyc"]}}
        )
        schema = CubeSchema([geo, IntegerDimension("day", 0, 4)], measure="m")
        cube = DataCube(schema)
        cube.insert({"geo": "berlin", "day": 0}, 3.0)
        cube.insert({"geo": "nyc", "day": 1}, 4.0)
        save_datacube(cube, cube_path)
        restored = load_datacube(cube_path)
        restored_geo = restored.schema.dimension("geo")
        assert restored.sum(geo=restored_geo.member("emea")) == 3.0
        assert restored_geo.members_at(1) == ["emea", "amer"]

    def test_without_optional_companions(self, cube_path):
        cube = DataCube(full_schema(), method="fenwick", track_count=False)
        cube.insert({"age": 20, "date": JAN1}, 1.0)
        save_datacube(cube, cube_path)
        restored = load_datacube(cube_path)
        assert restored.sum() == 1.0
        with pytest.raises(RuntimeError):
            restored.count()


class TestErrors:
    def test_wrong_kind_rejected(self, cube_path, tmp_path):
        from repro import DynamicDataCube
        from repro.persist import save_cube

        save_cube(DynamicDataCube((4, 4)), cube_path)
        with pytest.raises(PersistError):
            load_datacube(cube_path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(PersistError):
            load_datacube(tmp_path / "absent.npz")

    def test_custom_dimension_rejected(self, cube_path):
        from repro.olap.schema import Dimension

        class WeirdDimension(Dimension):
            @property
            def size(self):
                return 2

            def index_of(self, value):
                return 0

            def value_of(self, index):
                return "x"

        schema = CubeSchema([WeirdDimension("w"), IntegerDimension("a", 0, 1)])
        cube = DataCube(schema, method="naive")
        with pytest.raises(PersistError):
            save_datacube(cube, cube_path)
