"""Tests for overlay boxes (Sections 3.1/4.2) against brute-force oracles."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.overlay import ArrayOverlay, TreeOverlay, _drop_axis
from repro.counters import OpCounter


def oracle_row_value(region: np.ndarray, group: int, cross: tuple) -> int:
    """Definition of a row-sum value, computed directly from the region.

    The cumulative sum of complete dimension-``group`` rows over the
    cross-range ``[0, cross]`` (inclusive in every remaining dimension).
    """
    slices = []
    position = 0
    for axis in range(region.ndim):
        if axis == group:
            slices.append(slice(None))
        else:
            slices.append(slice(0, cross[position] + 1))
            position += 1
    return int(region[tuple(slices)].sum())


@pytest.fixture(params=[ArrayOverlay, TreeOverlay])
def overlay_class(request):
    return request.param


class TestDropAxis:
    def test_drop_each_axis(self):
        assert _drop_axis((1, 2, 3), 0) == (2, 3)
        assert _drop_axis((1, 2, 3), 1) == (1, 3)
        assert _drop_axis((1, 2, 3), 2) == (1, 2)


class TestOverlaySemantics:
    @pytest.mark.parametrize("dims", [1, 2, 3])
    @pytest.mark.parametrize("side", [2, 4])
    def test_from_dense_subtotal(self, overlay_class, dims, side):
        rng = np.random.default_rng(dims * 10 + side)
        region = rng.integers(0, 9, size=(side,) * dims)
        overlay = overlay_class.from_dense(region, OpCounter())
        assert overlay.subtotal() == region.sum()

    @pytest.mark.parametrize("dims", [2, 3])
    @pytest.mark.parametrize("side", [2, 4])
    def test_row_values_match_oracle(self, overlay_class, dims, side):
        rng = np.random.default_rng(dims * 100 + side)
        region = rng.integers(0, 9, size=(side,) * dims)
        overlay = overlay_class.from_dense(region, OpCounter())
        for group in range(dims):
            for cross in np.ndindex(*(side,) * (dims - 1)):
                assert overlay.row_value(group, tuple(cross)) == oracle_row_value(
                    region, group, tuple(cross)
                )

    def test_paper_figure8_first_box(self, overlay_class):
        """The worked values of Figure 8: subtotal 51, row sums 11/29.

        The prose gives all the constraints we need: the first 4x4 box
        sums to 51, its first row sums to 11, its first two rows to 29.
        We build a region satisfying them and check the overlay agrees.
        """
        region = np.array(
            [
                [3, 4, 2, 2],
                [2, 7, 3, 6],
                [5, 2, 1, 2],
                [2, 4, 3, 3],
            ],
            dtype=np.int64,
        )
        assert region.sum() == 51 and region[0].sum() == 11 and region[:2].sum() == 29
        overlay = overlay_class.from_dense(region, OpCounter())
        assert overlay.subtotal() == 51
        # The Y-style values (group 1: complete columns-within-rows):
        # cumulative sums of complete rows — the paper's 11 and 29.
        assert overlay.row_value(1, (0,)) == 11
        assert overlay.row_value(1, (1,)) == 29
        # The X-style values (group 0: complete rows-within-columns):
        # cumulative sums of complete columns — column 0 sums to 12.
        assert overlay.row_value(0, (0,)) == region[:, 0].sum() == 12
        # Either group saturates to the subtotal at the far corner.
        assert overlay.row_value(0, (3,)) == overlay.row_value(1, (3,)) == 51

    @pytest.mark.parametrize("dims", [2, 3])
    def test_apply_delta_updates_everything(self, overlay_class, dims):
        side = 4
        rng = np.random.default_rng(42 + dims)
        region = rng.integers(0, 9, size=(side,) * dims)
        overlay = overlay_class.from_dense(region, OpCounter())
        cell = tuple(int(rng.integers(0, side)) for _ in range(dims))
        overlay.apply_delta(cell, 7)
        region[cell] += 7
        assert overlay.subtotal() == region.sum()
        for group in range(dims):
            for cross in np.ndindex(*(side,) * (dims - 1)):
                assert overlay.row_value(group, tuple(cross)) == oracle_row_value(
                    region, group, tuple(cross)
                )

    def test_empty_overlay_reads_zero(self, overlay_class):
        overlay = overlay_class(4, 2, OpCounter())
        assert overlay.subtotal() == 0
        assert overlay.row_value(0, (2,)) == 0
        assert overlay.row_value(1, (3,)) == 0

    def test_memory_cells_matches_table2_formula(self):
        """Dense overlays store exactly k^d - (k-1)^d values (Table 2)."""
        for side, dims in [(2, 2), (4, 2), (8, 2), (2, 3), (4, 3)]:
            region = np.ones((side,) * dims, dtype=np.int64)
            overlay = ArrayOverlay.from_dense(region, OpCounter())
            # d groups of side^(d-1) plus the subtotal; the paper's count
            # k^d - (k-1)^d deduplicates shared face cells, ours stores
            # each group fully: d*k^(d-1) + 1 >= k^d - (k-1)^d.
            assert overlay.memory_cells() == dims * side ** (dims - 1) + 1
            assert overlay.memory_cells() >= side**dims - (side - 1) ** dims

    def test_tree_overlay_lazy_groups(self):
        overlay = TreeOverlay(8, 2, OpCounter())
        assert overlay.memory_cells() == 1  # subtotal only
        overlay.apply_delta((3, 3), 5)
        assert overlay.memory_cells() > 1

    def test_array_overlay_counts_cascade_writes(self):
        counter = OpCounter()
        overlay = ArrayOverlay(8, 2, counter)
        overlay.apply_delta((0, 0), 1)
        # subtotal + two full groups of 8 cumulative cells each
        assert counter.cell_writes == 1 + 8 + 8

    def test_tree_overlay_point_update_is_cheap(self):
        counter = OpCounter()
        overlay = TreeOverlay(64, 2, counter)
        overlay.apply_delta((0, 0), 1)
        first = counter.cell_writes
        counter.reset()
        overlay.apply_delta((0, 0), 1)
        # Updates after the lazy build touch O(log k) cells per group,
        # nowhere near the 64-cell cascade of the dense layout.
        assert counter.cell_writes < 20
        assert first >= counter.cell_writes


class TestSecondaryKinds:
    @pytest.mark.parametrize("secondary_kind", ["ddc", "fenwick"])
    @pytest.mark.parametrize("dims", [2, 3])
    def test_kinds_agree(self, secondary_kind, dims):
        side = 4
        rng = np.random.default_rng(5)
        region = rng.integers(0, 9, size=(side,) * dims)
        overlay = TreeOverlay.from_dense(
            region, OpCounter(), secondary_kind=secondary_kind
        )
        for group in range(dims):
            for cross in np.ndindex(*(side,) * (dims - 1)):
                assert overlay.row_value(group, tuple(cross)) == oracle_row_value(
                    region, group, tuple(cross)
                )

    def test_bc_fanout_respected(self):
        overlay = TreeOverlay(16, 2, OpCounter(), bc_fanout=4)
        overlay.apply_delta((0, 0), 1)
        assert overlay._groups[0].fanout == 4


class TestPropertyBased:
    @settings(max_examples=60, deadline=None)
    @given(
        st.integers(0, 10**6),
        st.sampled_from([(2, 2), (4, 2), (8, 2), (2, 3), (4, 3)]),
        st.sampled_from(["array", "tree"]),
    )
    def test_random_update_sequences(self, seed, geometry_params, kind):
        """Overlay row values track an arbitrary update sequence exactly."""
        side, dims = geometry_params
        rng = np.random.default_rng(seed)
        region = rng.integers(0, 9, size=(side,) * dims)
        overlay_class = ArrayOverlay if kind == "array" else TreeOverlay
        overlay = overlay_class.from_dense(region, OpCounter())
        for _ in range(10):
            cell = tuple(int(rng.integers(0, side)) for _ in range(dims))
            delta = int(rng.integers(-9, 10))
            overlay.apply_delta(cell, delta)
            region[cell] += delta
        assert overlay.subtotal() == region.sum()
        for group in range(dims):
            cross = tuple(int(rng.integers(0, side)) for _ in range(dims - 1))
            assert overlay.row_value(group, cross) == oracle_row_value(
                region, group, cross
            )
