"""Tests specific to the segment-tree baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.methods.segment_tree import SegmentTreeCube, _cover_nodes, _update_path
from repro.workloads import dense_uniform


class TestInternals:
    def test_update_path_reaches_root(self):
        path = _update_path(5, 8)
        assert path[0] == 13  # leaf position
        assert path[-1] == 1  # root
        assert len(path) == 4  # log2(8) + 1

    def test_cover_nodes_full_range(self):
        assert _cover_nodes(0, 7, 8) == [1]

    def test_cover_nodes_single_leaf(self):
        assert _cover_nodes(3, 3, 8) == [11]

    @pytest.mark.parametrize("low,high", [(0, 3), (2, 5), (1, 6), (4, 7)])
    def test_cover_nodes_partition_exactly(self, low, high):
        """Canonical nodes cover each leaf in range exactly once."""
        size = 8
        covered = []
        for node in _cover_nodes(low, high, size):
            # leaves under `node`
            left = node
            right = node
            while left < size:
                left *= 2
                right = right * 2 + 1
            covered.extend(range(left - size, right - size + 1))
        assert sorted(covered) == list(range(low, high + 1))

    def test_cover_count_is_logarithmic(self):
        nodes = _cover_nodes(1, 1022, 1024)
        assert len(nodes) <= 2 * 10


class TestBehaviour:
    def test_storage_is_two_to_the_d_times_cube(self):
        cube = SegmentTreeCube((64, 64))
        assert cube.memory_cells() == (2 * 64) ** 2

    def test_update_cost_logarithmic(self):
        cube = SegmentTreeCube((1024, 1024))
        cube.stats.reset()
        cube.add((0, 0), 1)
        assert cube.stats.cell_writes == 11 * 11  # (log2 n + 1)^2

    def test_query_cost_logarithmic(self):
        cube = SegmentTreeCube.from_array(dense_uniform((256, 256), seed=1))
        cube.stats.reset()
        cube.range_sum((1, 1), (254, 254))
        assert cube.stats.cell_reads <= (2 * 8) ** 2

    def test_range_query_no_inclusion_exclusion(self):
        """Unlike prefix methods, negative-free direct decomposition."""
        array = dense_uniform((32, 32), seed=2)
        cube = SegmentTreeCube.from_array(array)
        assert cube.range_sum((5, 7), (20, 30)) == array[5:21, 7:31].sum()

    def test_non_power_of_two_shapes(self):
        rng = np.random.default_rng(3)
        array = rng.integers(0, 9, size=(13, 27))
        cube = SegmentTreeCube.from_array(array)
        assert cube.prefix_sum((12, 26)) == array.sum()
        assert np.array_equal(cube.to_dense(), array)

    def test_bulk_equals_incremental(self, rng):
        array = rng.integers(0, 9, size=(10, 10))
        bulk = SegmentTreeCube.from_array(array)
        incremental = SegmentTreeCube(array.shape)
        for cell in np.ndindex(*array.shape):
            if array[cell]:
                incremental.add(cell, int(array[cell]))
        assert np.array_equal(bulk._tree, incremental._tree)

    def test_three_dimensional(self, rng):
        array = rng.integers(0, 5, size=(5, 6, 7))
        cube = SegmentTreeCube.from_array(array)
        assert cube.range_sum((1, 2, 3), (4, 5, 6)) == array[1:5, 2:6, 3:7].sum()
