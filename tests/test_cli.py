"""Tests for the command-line interface."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import main
from repro.persist import load_cube, save_cube
from repro import DynamicDataCube, GrowableCube


@pytest.fixture
def points_csv(tmp_path):
    path = tmp_path / "points.csv"
    path.write_text("x,y,sales\n0,0,10\n3,4,25\n7,7,5\n3,4,15\n")
    return path


@pytest.fixture
def cube_file(tmp_path, points_csv):
    path = tmp_path / "cube.npz"
    assert main(["build", str(points_csv), str(path)]) == 0
    return path


class TestBuild:
    def test_build_from_csv(self, cube_file):
        cube = load_cube(cube_file)
        assert cube.name == "ddc"
        assert cube.shape == (8, 8)
        assert cube.get((3, 4)) == 40  # duplicate rows combined
        assert cube.total() == 55

    def test_build_other_method(self, tmp_path, points_csv):
        path = tmp_path / "ps.npz"
        assert main(["build", str(points_csv), str(path), "--method", "ps"]) == 0
        assert load_cube(path).name == "ps"

    def test_build_float_measure(self, tmp_path):
        source = tmp_path / "f.csv"
        source.write_text("0,0,1.5\n1,1,2.25\n")
        path = tmp_path / "f.npz"
        assert main(["build", str(source), str(path), "--float"]) == 0
        assert load_cube(path).total() == pytest.approx(3.75)

    def test_build_from_npy(self, tmp_path, rng):
        data = rng.integers(0, 9, size=(6, 5))
        source = tmp_path / "a.npy"
        np.save(source, data)
        path = tmp_path / "a.npz"
        assert main(["build", str(source), str(path)]) == 0
        assert np.array_equal(load_cube(path).to_dense(), data)

    def test_build_three_dims(self, tmp_path):
        source = tmp_path / "p3.csv"
        source.write_text("1,2,3,10\n0,0,0,5\n")
        path = tmp_path / "c3.npz"
        assert main(["build", str(source), str(path), "--dims", "3"]) == 0
        cube = load_cube(path)
        assert cube.shape == (2, 3, 4)
        assert cube.total() == 15

    def test_build_rejects_bad_columns(self, tmp_path):
        source = tmp_path / "bad.csv"
        source.write_text("1,2\n")
        with pytest.raises(SystemExit):
            main(["build", str(source), str(tmp_path / "x.npz")])

    def test_build_rejects_non_numeric_data_row(self, tmp_path):
        source = tmp_path / "bad.csv"
        source.write_text("0,0,5\noops,1,2\n")
        with pytest.raises(SystemExit):
            main(["build", str(source), str(tmp_path / "x.npz")])

    def test_build_rejects_empty_file(self, tmp_path):
        source = tmp_path / "empty.csv"
        source.write_text("\n")
        with pytest.raises(SystemExit):
            main(["build", str(source), str(tmp_path / "x.npz")])


class TestQuery:
    def test_range_query(self, cube_file, capsys):
        assert main(["query", str(cube_file), "--low", "0", "0", "--high", "7", "7"]) == 0
        assert capsys.readouterr().out.strip() == "55"

    def test_prefix_query(self, cube_file, capsys):
        assert main(["query", str(cube_file), "--low", "3", "4"]) == 0
        assert capsys.readouterr().out.strip() == "50"


class TestUpdate:
    def test_update_persists(self, cube_file, capsys):
        assert main(
            ["update", str(cube_file), "--cell", "1", "1", "--delta", "100"]
        ) == 0
        cube = load_cube(cube_file)
        assert cube.get((1, 1)) == 100
        assert cube.total() == 155


class TestInfo:
    def test_info_method_cube(self, cube_file, capsys):
        assert main(["info", str(cube_file)]) == 0
        out = capsys.readouterr().out
        assert "method:        ddc" in out
        assert "shape:         (8, 8)" in out
        assert "total:         55" in out

    def test_info_growable_cube(self, tmp_path, capsys):
        grown = GrowableCube(dims=2)
        grown.add((-5, 9), 3)
        path = tmp_path / "g.npz"
        save_cube(grown, path)
        assert main(["info", str(path)]) == 0
        out = capsys.readouterr().out
        assert "growable cube" in out
        assert "bounds:" in out


class TestArtifacts:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "1E+72" in out

    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        assert "75.00%" in capsys.readouterr().out

    def test_figure1(self, capsys):
        assert main(["figure1"]) == 0
        assert "Figure 1" in capsys.readouterr().out

    def test_table1_custom_dims(self, capsys):
        assert main(["table1", "--dims", "2"]) == 0
        assert "d=2" in capsys.readouterr().out


class TestObservabilityCommands:
    ARGS = ["--shape", "32", "32", "--shards", "2", "--events", "60", "--seed", "3"]

    def test_serve_stats_reports_latency_quantiles(self, capsys):
        assert main(["serve-stats", *self.ARGS]) == 0
        out = capsys.readouterr().out
        assert "p50us" in out and "p95us" in out and "p99us" in out
        assert "stale)" in out  # cache line includes stale evictions

    def test_metrics_prometheus_exposition(self, capsys):
        assert main(["metrics", *self.ARGS, "--format", "prom"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_engine_request_seconds histogram" in out
        assert 'repro_engine_shard_seconds_bucket{shard=' in out
        assert "repro_engine_cache_lookups_total{" in out

    def test_metrics_json_export(self, capsys):
        import json

        assert main(["metrics", *self.ARGS, "--format", "json"]) == 0
        document = json.loads(capsys.readouterr().out)
        names = {family["name"] for family in document["metrics"]}
        assert "repro_engine_shard_seconds" in names
        assert "repro_tree_descent_depth" in names

    def test_trace_prints_nested_span_trees(self, capsys):
        assert main(["trace", *self.ARGS, "--slowest", "2"]) == 0
        out = capsys.readouterr().out
        assert "2 slowest:" in out
        assert "engine." in out
        assert "  shard.range_sum" in out  # nested one level under the root
        assert "slow-query log:" in out


class TestChaosCommand:
    ARGS = ["--shape", "32", "32", "--shards", "4", "--events", "60", "--seed", "1"]

    def test_fallback_soak_is_exact_and_exits_zero(self, tmp_path, capsys):
        artifact = tmp_path / "chaos.json"
        assert main([
            "chaos", *self.ARGS,
            "--fault-rate", "0.3", "--mode", "fallback",
            "--json", str(artifact),
        ]) == 0
        out = capsys.readouterr().out
        assert "sub-operations perturbed" in out
        assert "0 MISMATCHES" in out
        import json

        document = json.loads(artifact.read_text())
        assert document["experiment"] == "chaos_soak"
        (row,) = document["rows"]
        assert row["mode"] == "fallback"
        assert row["mismatches"] == 0
        assert row["injected_rate"] > 0

    def test_partial_soak_marks_degraded_answers(self, tmp_path, capsys):
        import json

        artifact = tmp_path / "chaos.json"
        assert main([
            "chaos", *self.ARGS,
            "--fault-rate", "0.4", "--retries", "0", "--mode", "partial",
            "--json", str(artifact),
        ]) == 0
        out = capsys.readouterr().out
        assert "degraded (marked)" in out
        (row,) = json.loads(artifact.read_text())["rows"]
        assert row["degraded"] > 0
        assert row["mismatches"] == 0

    def test_rejects_bad_rate(self):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            main(["chaos", "--fault-rate", "1.5"])


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
