"""Tests for cube persistence (save_cube / load_cube)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import DynamicDataCube, GrowableCube
from repro.methods import build_method, method_class
from repro.persist import PersistError, load_cube, save_cube
from repro.workloads import clustered, dense_uniform


@pytest.fixture
def cube_path(tmp_path):
    return tmp_path / "cube.npz"


class TestMethodRoundTrips:
    def test_round_trip_every_method(self, method_name, cube_path, rng):
        data = rng.integers(-9, 10, size=(17, 11))
        method = method_class(method_name).from_array(data)
        save_cube(method, cube_path)
        restored = load_cube(cube_path)
        assert restored.name == method_name
        assert restored.shape == method.shape
        assert np.array_equal(restored.to_dense(), data)
        # The restored structure keeps working.
        restored.add((3, 4), 5)
        assert restored.get((3, 4)) == data[3, 4] + 5

    def test_round_trip_preserves_dtype(self, cube_path):
        method = build_method("ddc", np.ones((4, 4), dtype=np.float64) * 0.5)
        save_cube(method, cube_path)
        restored = load_cube(cube_path)
        assert restored.dtype == np.float64
        assert restored.total() == pytest.approx(8.0)

    def test_round_trip_empty_cube(self, cube_path):
        method = DynamicDataCube((32, 32))
        save_cube(method, cube_path)
        restored = load_cube(cube_path)
        assert restored.total() == 0
        assert restored.memory_cells() == 0

    def test_round_trip_three_dims(self, cube_path, rng):
        data = rng.integers(0, 9, size=(6, 7, 8))
        method = DynamicDataCube.from_array(data)
        save_cube(method, cube_path)
        assert np.array_equal(load_cube(cube_path).to_dense(), data)

    def test_ddc_options_preserved(self, cube_path):
        method = DynamicDataCube.from_array(
            dense_uniform((16, 16), seed=1),
            leaf_side=8,
            secondary_kind="fenwick",
            bc_fanout=4,
        )
        save_cube(method, cube_path)
        restored = load_cube(cube_path)
        assert restored.leaf_side == 8
        assert restored.secondary_kind == "fenwick"
        assert restored.bc_fanout == 4

    def test_rps_block_side_preserved(self, cube_path):
        method = build_method("rps", dense_uniform((32, 32), seed=2), block_side=4)
        save_cube(method, cube_path)
        assert load_cube(cube_path).block_side == (4, 4)


class TestSparsityOnDisk:
    def test_sparse_cube_file_is_small(self, tmp_path):
        domain = (1024, 1024)
        data = clustered(domain, clusters=2, points_per_cluster=50, seed=3)
        sparse_path = tmp_path / "sparse.npz"
        dense_path = tmp_path / "dense.npz"
        save_cube(DynamicDataCube.from_array(data), sparse_path)
        save_cube(build_method("ps", data), dense_path)
        # The DDC file stores populated blocks only.
        assert sparse_path.stat().st_size < dense_path.stat().st_size / 5

    def test_sparse_round_trip_exact(self, tmp_path):
        data = clustered((256, 256), clusters=3, points_per_cluster=40, seed=4)
        path = tmp_path / "c.npz"
        save_cube(DynamicDataCube.from_array(data), path)
        restored = load_cube(path)
        assert np.array_equal(restored.to_dense(), data)
        restored.validate()


class TestGrowableRoundTrip:
    def test_round_trip(self, cube_path):
        grown = GrowableCube(dims=2, initial_side=4)
        grown.add((-500, 300), 7)
        grown.add((1200, -80), 3)
        save_cube(grown, cube_path)
        restored = load_cube(cube_path)
        assert isinstance(restored, GrowableCube)
        assert restored.get((-500, 300)) == 7
        assert restored.get((1200, -80)) == 3
        assert restored.bounds == grown.bounds
        assert restored.origin == grown.origin
        assert restored.total() == 10
        # Growth continues to work after restore.
        restored.add((-9999, 9999), 1)
        assert restored.total() == 11

    def test_empty_growable(self, cube_path):
        grown = GrowableCube(dims=3)
        save_cube(grown, cube_path)
        restored = load_cube(cube_path)
        assert restored.total() == 0
        assert restored.bounds is None


class TestErrorHandling:
    def test_unknown_object_rejected(self, cube_path):
        with pytest.raises(PersistError):
            save_cube({"not": "a cube"}, cube_path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(PersistError):
            load_cube(tmp_path / "missing.npz")

    def test_garbage_file(self, tmp_path):
        path = tmp_path / "garbage.npz"
        path.write_bytes(b"this is not a cube")
        with pytest.raises(PersistError):
            load_cube(path)

    def test_npz_without_metadata(self, tmp_path):
        path = tmp_path / "plain.npz"
        np.savez(path, values=np.arange(4))
        with pytest.raises(PersistError, match="no metadata"):
            load_cube(path)

    def test_future_format_version_rejected(self, tmp_path, cube_path):
        import json

        save_cube(DynamicDataCube((4, 4)), cube_path)
        with np.load(cube_path) as data:
            meta = json.loads(bytes(data["__meta__"]).decode())
            arrays = {key: data[key] for key in data.files if key != "__meta__"}
        meta["format_version"] = 999
        arrays["__meta__"] = np.frombuffer(
            json.dumps(meta).encode(), dtype=np.uint8
        )
        future = tmp_path / "future.npz"
        np.savez(future, **arrays)
        with pytest.raises(PersistError, match="version"):
            load_cube(future)
