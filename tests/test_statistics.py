"""Tests for bivariate range statistics (covariance / correlation)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.olap import CubeSchema, IntegerDimension
from repro.olap.statistics import BivariateCube, BivariateSummary


@pytest.fixture
def schema() -> CubeSchema:
    return CubeSchema(
        [IntegerDimension("day", 0, 29), IntegerDimension("store", 0, 4)],
        measure="ignored",
    )


@pytest.fixture
def cube(schema) -> BivariateCube:
    return BivariateCube(schema, x="ad_spend", y="sales", method="ddc")


class TestSummary:
    def test_empty_region(self, cube):
        summary = cube.summary()
        assert summary.count == 0
        assert summary.covariance is None
        assert summary.correlation is None
        assert summary.mean_x is None

    def test_single_point(self, cube):
        cube.insert({"day": 3, "store": 1}, 10.0, 100.0)
        summary = cube.summary()
        assert summary.count == 1
        assert summary.mean_x == 10.0
        assert summary.mean_y == 100.0
        assert summary.covariance == pytest.approx(0.0)
        assert summary.correlation is None  # zero variance

    def test_perfect_positive_correlation(self, cube):
        for day in range(10):
            cube.insert({"day": day, "store": 0}, float(day), 2.0 * day + 5)
        assert cube.correlation() == pytest.approx(1.0)
        assert cube.covariance() > 0

    def test_perfect_negative_correlation(self, cube):
        for day in range(10):
            cube.insert({"day": day, "store": 0}, float(day), -3.0 * day)
        assert cube.correlation() == pytest.approx(-1.0)

    def test_matches_numpy(self, cube, rng):
        xs = rng.uniform(0, 50, size=60)
        ys = 0.5 * xs + rng.normal(0, 5, size=60)
        for index, (x, y) in enumerate(zip(xs, ys)):
            cube.insert(
                {"day": index % 30, "store": index % 5}, float(x), float(y)
            )
        expected_cov = float(np.cov(xs, ys, bias=True)[0, 1])
        expected_corr = float(np.corrcoef(xs, ys)[0, 1])
        assert cube.covariance() == pytest.approx(expected_cov, rel=1e-9)
        assert cube.correlation() == pytest.approx(expected_corr, rel=1e-9)

    def test_regional_restriction(self, cube):
        # Correlated in week 1, anti-correlated in week 2.
        for day in range(7):
            cube.insert({"day": day, "store": 0}, float(day), float(day))
        for day in range(7, 14):
            cube.insert({"day": day, "store": 0}, float(day), float(-day))
        assert cube.correlation(day=(0, 6)) == pytest.approx(1.0)
        assert cube.correlation(day=(7, 13)) == pytest.approx(-1.0)

    def test_remove_retracts(self, cube):
        cube.insert({"day": 0, "store": 0}, 1.0, 1.0)
        cube.insert({"day": 1, "store": 0}, 2.0, 2.0)
        cube.insert({"day": 2, "store": 0}, 100.0, -100.0)  # the outlier
        cube.remove({"day": 2, "store": 0}, 100.0, -100.0)
        assert cube.correlation() == pytest.approx(1.0)
        assert cube.summary().count == 2


class TestConstruction:
    def test_distinct_measure_names_required(self, schema):
        with pytest.raises(ValueError):
            BivariateCube(schema, x="same", y="same")

    def test_methods_interchangeable(self, schema, rng):
        answers = []
        for method in ("naive", "ps", "ddc"):
            cube = BivariateCube(schema, method=method)
            local_rng = np.random.default_rng(5)
            for index in range(40):
                cube.insert(
                    {"day": index % 30, "store": index % 5},
                    float(local_rng.uniform(0, 10)),
                    float(local_rng.uniform(0, 10)),
                )
            answers.append(round(cube.correlation(), 12))
        assert len(set(answers)) == 1

    def test_memory_cells(self, cube):
        cube.insert({"day": 0, "store": 0}, 1.0, 2.0)
        assert cube.memory_cells() > 0


class TestSummaryDataclass:
    def test_clamps_correlation(self):
        # Construct a summary whose raw ratio drifts past 1 numerically.
        summary = BivariateSummary(
            count=2, sum_x=2.0, sum_y=2.0, sum_xx=2.0, sum_yy=2.0, sum_xy=2.0 + 1e-15
        )
        correlation = summary.correlation
        assert correlation is None or -1.0 <= correlation <= 1.0

    def test_variance_non_negative(self):
        summary = BivariateSummary(
            count=3, sum_x=3.0, sum_y=0.0, sum_xx=3.0 - 1e-12, sum_yy=0.0, sum_xy=0.0
        )
        assert summary.variance_x >= 0.0
