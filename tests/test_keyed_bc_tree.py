"""Tests for the sparse, key-addressed B^c tree."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.keyed_bc_tree import KeyedBcTree
from repro.counters import OpCounter
from repro.exceptions import StructureError


def reference_prefix(mapping: dict, key: int):
    return sum(value for k, value in mapping.items() if k <= key)


class TestConstruction:
    def test_empty(self):
        tree = KeyedBcTree()
        assert len(tree) == 0
        assert tree.total() == 0
        assert tree.prefix_sum(10**9) == 0
        tree.validate()

    def test_from_items(self):
        items = [(2, 5), (7, 1), (100, 3)]
        tree = KeyedBcTree.from_items(items, fanout=3)
        assert list(tree.items()) == items
        assert tree.total() == 9
        tree.validate()

    def test_from_items_rejects_unsorted(self):
        with pytest.raises(ValueError):
            KeyedBcTree.from_items([(3, 1), (2, 1)])

    def test_from_items_rejects_duplicates(self):
        with pytest.raises(ValueError):
            KeyedBcTree.from_items([(3, 1), (3, 1)])

    @pytest.mark.parametrize("count", [0, 1, 2, 5, 16, 17, 100, 333])
    @pytest.mark.parametrize("fanout", [3, 4, 16])
    def test_bulk_sizes(self, count, fanout):
        tree = KeyedBcTree.from_items(
            [(k * 3, k) for k in range(count)], fanout=fanout
        )
        tree.validate()
        assert len(tree) == count

    def test_rejects_tiny_fanout(self):
        with pytest.raises(ValueError):
            KeyedBcTree(fanout=2)

    def test_shared_counter(self):
        counter = OpCounter()
        tree = KeyedBcTree.from_items([(1, 1)], counter=counter)
        tree.prefix_sum(1)
        assert counter.cell_reads > 0


class TestReads:
    def test_prefix_between_keys(self):
        tree = KeyedBcTree.from_items([(10, 1), (20, 2), (30, 4)], fanout=3)
        assert tree.prefix_sum(5) == 0
        assert tree.prefix_sum(10) == 1
        assert tree.prefix_sum(15) == 1
        assert tree.prefix_sum(25) == 3
        assert tree.prefix_sum(10**9) == 7

    def test_get_missing_is_zero(self):
        tree = KeyedBcTree.from_items([(10, 1)])
        assert tree.get(9) == 0
        assert tree.get(10) == 1
        assert tree.get(11) == 0

    def test_negative_keys(self):
        tree = KeyedBcTree()
        tree.add(-5, 3)
        tree.add(5, 4)
        assert tree.prefix_sum(-5) == 3
        assert tree.prefix_sum(0) == 3
        assert tree.prefix_sum(5) == 7
        tree.validate()


class TestUpserts:
    def test_add_creates_row(self):
        tree = KeyedBcTree()
        tree.add(42, 7)
        assert tree.get(42) == 7
        assert len(tree) == 1

    def test_add_accumulates(self):
        tree = KeyedBcTree()
        tree.add(42, 7)
        tree.add(42, -3)
        assert tree.get(42) == 4
        assert len(tree) == 1

    def test_add_zero_is_noop(self):
        tree = KeyedBcTree()
        tree.add(1, 0)
        assert len(tree) == 0

    def test_set_semantics(self):
        tree = KeyedBcTree.from_items([(5, 9)])
        tree.set(5, 2)
        tree.set(6, 4)
        assert tree.get(5) == 2
        assert tree.get(6) == 4
        tree.validate()

    def test_many_inserts_all_orders(self):
        for order in ("ascending", "descending", "interleaved"):
            keys = list(range(200))
            if order == "descending":
                keys.reverse()
            elif order == "interleaved":
                keys = keys[::2] + keys[1::2]
            tree = KeyedBcTree(fanout=4)
            for key in keys:
                tree.add(key, key + 1)
            tree.validate()
            assert len(tree) == 200
            assert tree.total() == sum(range(1, 201))

    def test_update_cost_logarithmic(self):
        tree = KeyedBcTree(fanout=4)
        for key in range(4096):
            tree.add(key, 1)
        tree.stats.reset()
        tree.add(2048, 5)
        assert tree.stats.node_visits <= tree.height()


class TestPropertyBased:
    @settings(max_examples=120, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(-100, 100), st.integers(-50, 50)), max_size=80
        ),
        st.integers(3, 8),
    )
    def test_matches_dict_reference(self, operations, fanout):
        tree = KeyedBcTree(fanout=fanout)
        reference: dict[int, int] = {}
        for key, delta in operations:
            tree.add(key, delta)
            if delta != 0:
                reference[key] = reference.get(key, 0) + delta
        tree.validate()
        assert tree.total() == sum(reference.values())
        for probe in range(-110, 111, 13):
            assert tree.prefix_sum(probe) == reference_prefix(reference, probe)
        for key in list(reference)[:10]:
            assert tree.get(key) == reference[key]

    @settings(max_examples=60, deadline=None)
    @given(st.sets(st.integers(0, 10**6), max_size=120), st.integers(3, 16))
    def test_bulk_equals_incremental(self, keys, fanout):
        items = sorted((key, key % 7 + 1) for key in keys)
        bulk = KeyedBcTree.from_items(items, fanout=fanout)
        incremental = KeyedBcTree(fanout=fanout)
        for key, value in items:
            incremental.add(key, value)
        assert list(bulk.items()) == list(incremental.items())
        bulk.validate()
        incremental.validate()


class TestValidateDetectsCorruption:
    def test_sts_corruption(self):
        tree = KeyedBcTree.from_items([(k, 1) for k in range(64)], fanout=4)
        tree._root.sums[0] += 1
        with pytest.raises(StructureError):
            tree.validate()

    def test_max_key_corruption(self):
        tree = KeyedBcTree.from_items([(k, 1) for k in range(64)], fanout=4)
        tree._root.max_keys[0] += 1
        with pytest.raises(StructureError):
            tree.validate()
