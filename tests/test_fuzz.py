"""Structural fuzzing: long mixed operation sequences with invariant checks.

These tests hammer the Dynamic Data Cube with randomly interleaved
updates, queries, expansions, batches, and conversions while repeatedly
validating every internal invariant and cross-checking results against a
dense oracle — the closest thing to fault injection a deterministic
structure admits.

Example counts are sized for the PR path; the nightly chaos job sets
``REPRO_FUZZ_SCALE`` (an integer multiplier, default 1) to run the same
programs at soak depth.  The multiplier must live in the per-test
``@settings`` decorators — they override any registered hypothesis
profile, so an env-var profile alone would silently not apply.
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import sanitize
from repro.convert import convert
from repro.core.basic_ddc import BasicDynamicDataCube
from repro.core.bc_tree import BcTree
from repro.core.ddc import DynamicDataCube
from repro.core.growth import GrowableCube
from repro.core.keyed_bc_tree import KeyedBcTree
from repro.persist import load_cube, save_cube

#: Nightly soak multiplier for every max_examples below (1 on the PR path).
_SCALE = max(1, int(os.environ.get("REPRO_FUZZ_SCALE", "1")))


@st.composite
def fuzz_program(draw):
    """A random sequence of cube operations with a seed for the data."""
    seed = draw(st.integers(0, 2**31))
    side = draw(st.sampled_from([4, 8, 16]))
    leaf_side = draw(st.sampled_from([1, 2, 4]))
    steps = draw(
        st.lists(
            st.sampled_from(["add", "set", "batch", "query", "expand", "validate"]),
            max_size=25,
        )
    )
    return seed, side, leaf_side, steps


class TestDdcFuzz:
    @settings(max_examples=20 * _SCALE, deadline=None)
    @given(program=fuzz_program(), cube_class=st.sampled_from(["ddc", "basic"]))
    def test_mixed_operations_stay_consistent(self, program, cube_class):
        seed, side, leaf_side, steps = program
        rng = np.random.default_rng(seed)
        cls = DynamicDataCube if cube_class == "ddc" else BasicDynamicDataCube
        oracle = rng.integers(-5, 6, size=(side, side))
        cube = cls.from_array(oracle.copy(), leaf_side=leaf_side)
        oracle = np.array(oracle)

        for step in steps:
            current_side = cube.shape[0]
            if step == "add":
                cell = tuple(int(rng.integers(0, current_side)) for _ in range(2))
                delta = int(rng.integers(-5, 6))
                cube.add(cell, delta)
                oracle[cell] += delta
            elif step == "set":
                cell = tuple(int(rng.integers(0, current_side)) for _ in range(2))
                value = int(rng.integers(-9, 10))
                cube.set(cell, value)
                oracle[cell] = value
            elif step == "batch":
                batch = []
                for _ in range(int(rng.integers(1, 6))):
                    cell = tuple(
                        int(rng.integers(0, current_side)) for _ in range(2)
                    )
                    delta = int(rng.integers(-5, 6))
                    batch.append((cell, delta))
                    oracle[cell] += delta
                cube.add_many(batch)
            elif step == "query":
                low = tuple(int(rng.integers(0, current_side)) for _ in range(2))
                high = tuple(
                    int(rng.integers(lo, current_side)) for lo in low
                )
                region = tuple(slice(lo, hi + 1) for lo, hi in zip(low, high))
                assert cube.range_sum(low, high) == oracle[region].sum()
            elif step == "expand":
                if cube.shape[0] >= 32:
                    continue  # keep validate() affordable
                corner = int(rng.integers(0, 4))
                cube.expand(corner)
                grown = np.zeros((oracle.shape[0] * 2,) * 2, dtype=oracle.dtype)
                row = oracle.shape[0] if corner & 1 else 0
                column = oracle.shape[1] if corner & 2 else 0
                grown[
                    row : row + oracle.shape[0], column : column + oracle.shape[1]
                ] = oracle
                oracle = grown
            elif step == "validate":
                if cube.shape[0] <= 16:  # full validation is O(n^2 log n)
                    cube.validate()

        cube.validate()
        assert np.array_equal(cube.to_dense(), oracle)
        assert cube.total() == oracle.sum()

    @settings(max_examples=25 * _SCALE, deadline=None)
    @given(seed=st.integers(0, 2**31))
    def test_convert_round_trips_preserve_everything(self, seed):
        """ddc -> ps -> fenwick -> ddc must be the identity."""
        rng = np.random.default_rng(seed)
        data = rng.integers(-9, 10, size=(int(rng.integers(2, 12)),) * 2)
        start = DynamicDataCube.from_array(data)
        chain = convert(convert(convert(start, "ps"), "fenwick"), "ddc")
        assert np.array_equal(chain.to_dense(), data)
        chain.validate()

    @settings(max_examples=15 * _SCALE, deadline=None)
    @given(seed=st.integers(0, 2**31))
    def test_persist_round_trip_mid_lifecycle(self, seed, tmp_path_factory):
        """Save/load at a random point, then keep operating."""
        rng = np.random.default_rng(seed)
        cube = DynamicDataCube((16, 16))
        oracle = np.zeros((16, 16), dtype=np.int64)
        for _ in range(int(rng.integers(0, 20))):
            cell = tuple(int(rng.integers(0, 16)) for _ in range(2))
            delta = int(rng.integers(-5, 6))
            cube.add(cell, delta)
            oracle[cell] += delta
        path = tmp_path_factory.mktemp("fuzz") / "cube.npz"
        save_cube(cube, path)
        restored = load_cube(path)
        for _ in range(int(rng.integers(0, 10))):
            cell = tuple(int(rng.integers(0, 16)) for _ in range(2))
            delta = int(rng.integers(-5, 6))
            restored.add(cell, delta)
            oracle[cell] += delta
        restored.validate()
        assert np.array_equal(restored.to_dense(), oracle)


class TestSanitizerFuzz:
    """Random interleavings with a full audit after *every* mutation.

    :func:`repro.analysis.sanitize` wraps each structure so the audit
    runs inside the operation sequence, pinning a corruption to the
    exact operation that introduced it instead of a later query.
    """

    @settings(max_examples=15 * _SCALE, deadline=None)
    @given(seed=st.integers(0, 2**31), fanout=st.sampled_from([4, 8]))
    def test_bc_tree_every_mutation_audited(self, seed, fanout):
        rng = np.random.default_rng(seed)
        tree = sanitize(BcTree(fanout=fanout))
        mirror: list[int] = []
        for _ in range(30):
            op = rng.choice(["append", "insert", "add", "set", "delete"])
            if op == "append" or not mirror:
                value = int(rng.integers(-9, 10))
                tree.append(value)
                mirror.append(value)
            elif op == "insert":
                rank = int(rng.integers(0, len(mirror) + 1))
                value = int(rng.integers(-9, 10))
                tree.insert(rank, value)
                mirror.insert(rank, value)
            elif op == "add":
                rank = int(rng.integers(0, len(mirror)))
                delta = int(rng.integers(-5, 6))
                tree.add(rank, delta)
                mirror[rank] += delta
            elif op == "set":
                rank = int(rng.integers(0, len(mirror)))
                value = int(rng.integers(-9, 10))
                tree.set(rank, value)
                mirror[rank] = value
            else:
                rank = int(rng.integers(0, len(mirror)))
                tree.delete(rank)
                del mirror[rank]
        assert tree.to_list() == mirror
        assert tree.audits >= 30

    @settings(max_examples=15 * _SCALE, deadline=None)
    @given(seed=st.integers(0, 2**31), fanout=st.sampled_from([4, 8]))
    def test_keyed_bc_tree_every_mutation_audited(self, seed, fanout):
        rng = np.random.default_rng(seed)
        tree = sanitize(KeyedBcTree(fanout=fanout))
        mirror: dict[int, int] = {}
        for _ in range(30):
            key = int(rng.integers(-50, 50))
            if rng.random() < 0.5:
                delta = int(rng.integers(-5, 6))
                tree.add(key, delta)
                mirror[key] = mirror.get(key, 0) + delta
            else:
                value = int(rng.integers(-9, 10))
                tree.set(key, value)
                mirror[key] = value
        assert tree.total() == sum(mirror.values())
        for key in list(mirror)[:5]:
            assert tree.get(key) == mirror[key]
        assert tree.audits >= 30

    @settings(max_examples=10 * _SCALE, deadline=None)
    @given(seed=st.integers(0, 2**31))
    def test_ddc_every_mutation_audited(self, seed):
        rng = np.random.default_rng(seed)
        cube = sanitize(DynamicDataCube((8, 8)))
        oracle = np.zeros((8, 8), dtype=np.int64)
        mutations = 0
        for _ in range(20):
            side = cube.shape[0]
            op = rng.choice(["add", "set", "batch", "expand"])
            if op == "add":
                cell = tuple(int(rng.integers(0, side)) for _ in range(2))
                delta = int(rng.integers(-5, 6))
                cube.add(cell, delta)
                oracle[cell] += delta
            elif op == "set":
                cell = tuple(int(rng.integers(0, side)) for _ in range(2))
                value = int(rng.integers(-9, 10))
                cube.set(cell, value)
                oracle[cell] = value
            elif op == "batch":
                batch = []
                for _ in range(int(rng.integers(1, 4))):
                    cell = tuple(int(rng.integers(0, side)) for _ in range(2))
                    delta = int(rng.integers(-5, 6))
                    batch.append((cell, delta))
                    oracle[cell] += delta
                cube.add_many(batch)
            elif op == "expand":
                if side >= 16:  # keep the per-mutation audits affordable
                    continue
                corner = int(rng.integers(0, 4))
                cube.expand(corner)
                grown = np.zeros((side * 2,) * 2, dtype=oracle.dtype)
                row = side if corner & 1 else 0
                column = side if corner & 2 else 0
                grown[row : row + side, column : column + side] = oracle
                oracle = grown
            mutations += 1
        assert np.array_equal(cube.to_dense(), oracle)
        assert cube.audits == mutations


class TestVectorDifferentialFuzz:
    """Differential fuzz: the slab-tree backend vs the reference DDC.

    The vector backend reimplements the paper's descent as flat numpy
    slabs; any divergence from the pure-python reference under a random
    interleaving of point updates, batched updates, and batched range
    queries is a bug in one of them.  A dense numpy oracle arbitrates.
    """

    @settings(max_examples=20 * _SCALE, deadline=None)
    @given(
        seed=st.integers(0, 2**31),
        shape=st.sampled_from([(8, 8), (16, 16), (7, 13), (5, 6, 4)]),
        branching=st.sampled_from([2, 4, 16]),
        steps=st.lists(
            st.sampled_from(["add", "add_many", "range_many", "prefix_many"]),
            max_size=20,
        ),
    )
    def test_vector_tracks_reference(self, seed, shape, branching, steps):
        from repro.methods.vector import VectorSlabCube

        rng = np.random.default_rng(seed)
        dims = len(shape)
        oracle = rng.integers(-9, 10, size=shape)
        vector = VectorSlabCube.from_array(oracle.copy(), branching=branching)
        reference = DynamicDataCube.from_array(oracle.copy())
        oracle = np.array(oracle)
        # Exercise the batched kernels even for tiny fuzz batches.
        vector.batch_crossover_override = 1
        reference.batch_crossover_override = 1

        def cell():
            return tuple(int(rng.integers(0, n)) for n in shape)

        for step in steps:
            if step == "add":
                target = cell()
                delta = int(rng.integers(-5, 6))
                vector.add(target, delta)
                reference.add(target, delta)
                oracle[target] += delta
            elif step == "add_many":
                batch = []
                for _ in range(int(rng.integers(1, 8))):
                    target = cell()
                    delta = int(rng.integers(-5, 6))
                    batch.append((target, delta))
                    oracle[target] += delta
                vector.add_many(batch)
                reference.add_many(batch)
            elif step == "range_many":
                ranges = []
                for _ in range(int(rng.integers(1, 8))):
                    low = cell()
                    high = tuple(
                        int(rng.integers(lo, shape[axis]))
                        for axis, lo in enumerate(low)
                    )
                    ranges.append((low, high))
                got = vector.range_sum_many(ranges)
                ref = reference.range_sum_many(ranges)
                expected = [
                    int(
                        oracle[
                            tuple(
                                slice(lo, hi + 1)
                                for lo, hi in zip(low, high)
                            )
                        ].sum()
                    )
                    for low, high in ranges
                ]
                assert [int(v) for v in got] == expected
                assert [int(v) for v in ref] == expected
            elif step == "prefix_many":
                cells = [cell() for _ in range(int(rng.integers(1, 8)))]
                got = vector.prefix_sum_many(cells)
                ref = reference.prefix_sum_many(cells)
                assert [int(v) for v in got] == [int(v) for v in ref]

        assert np.array_equal(vector.to_dense(), oracle)
        assert int(vector.total()) == int(oracle.sum())
        assert dims == len(vector.shape)


class TestGrowableFuzz:
    @settings(max_examples=25 * _SCALE, deadline=None)
    @given(
        seed=st.integers(0, 2**31),
        scale=st.sampled_from([10, 1000, 10**6]),
    )
    def test_extreme_coordinate_scales(self, seed, scale):
        rng = np.random.default_rng(seed)
        cube = GrowableCube(dims=2, initial_side=4)
        reference: dict[tuple[int, int], int] = {}
        for _ in range(25):
            point = (
                int(rng.integers(-scale, scale)),
                int(rng.integers(-scale, scale)),
            )
            delta = int(rng.integers(1, 9))
            cube.add(point, delta)
            reference[point] = reference.get(point, 0) + delta
        assert cube.total() == sum(reference.values())
        if cube.side <= 1024:  # full validation materialises side^2 cells
            cube._cube.validate()
        for point, value in list(reference.items())[:5]:
            assert cube.get(point) == value
