"""Tests for the Dynamic Data Cube primary tree (Section 4)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro import DynamicDataCube, NaiveArray
from repro.exceptions import OutOfBoundsError, StructureError


def build_random(shape, seed=0, **options):
    rng = np.random.default_rng(seed)
    array = rng.integers(0, 10, size=shape)
    return DynamicDataCube.from_array(array, **options), array


class TestConstruction:
    def test_empty_cube(self):
        cube = DynamicDataCube((8, 8))
        assert cube.total() == 0
        assert cube.memory_cells() == 0  # fully lazy
        assert cube.prefix_sum((7, 7)) == 0

    def test_capacity_pads_to_power_of_two(self):
        cube = DynamicDataCube((5, 9))
        assert cube._capacity == 16
        assert cube.shape == (5, 9)

    def test_leaf_side_must_be_power_of_two(self):
        with pytest.raises(ValueError):
            DynamicDataCube((8, 8), leaf_side=3)

    def test_unknown_secondary_kind(self):
        with pytest.raises(ValueError):
            DynamicDataCube((8, 8), secondary_kind="skiplist")

    def test_from_array_round_trip(self):
        cube, array = build_random((12, 7), seed=1)
        assert np.array_equal(cube.to_dense(), array)
        cube.validate()

    def test_from_all_zero_array_stays_lazy(self):
        cube = DynamicDataCube.from_array(np.zeros((16, 16), dtype=np.int64))
        assert cube.memory_cells() == 0

    def test_bulk_build_equals_incremental(self):
        rng = np.random.default_rng(9)
        array = rng.integers(0, 10, size=(16, 16))
        bulk = DynamicDataCube.from_array(array)
        incremental = DynamicDataCube(array.shape)
        for cell in np.ndindex(*array.shape):
            if array[cell]:
                incremental.add(cell, int(array[cell]))
        bulk.validate()
        incremental.validate()
        assert np.array_equal(bulk.to_dense(), incremental.to_dense())
        for probe in [(0, 0), (7, 7), (15, 15), (3, 12)]:
            assert bulk.prefix_sum(probe) == incremental.prefix_sum(probe)


class TestQueries:
    @pytest.mark.parametrize("shape", [(16,), (16, 16), (8, 8, 8)])
    def test_prefix_matches_cumsum(self, shape):
        cube, array = build_random(shape, seed=2)
        prefix = array.copy()
        for axis in range(array.ndim):
            prefix = np.cumsum(prefix, axis=axis)
        rng = np.random.default_rng(3)
        for _ in range(30):
            cell = tuple(int(rng.integers(0, s)) for s in shape)
            assert cube.prefix_sum(cell) == prefix[cell]

    def test_range_sum_matches_naive(self):
        cube, array = build_random((20, 13), seed=4)
        naive = NaiveArray.from_array(array)
        rng = np.random.default_rng(5)
        for _ in range(40):
            low = tuple(int(rng.integers(0, s)) for s in array.shape)
            high = tuple(int(rng.integers(lo, s)) for lo, s in zip(low, array.shape))
            assert cube.range_sum(low, high) == naive.range_sum(low, high)

    def test_query_visits_exactly_log_levels(self):
        """Theorem 1: one child descended per level — log2(n) node visits."""
        cube, _ = build_random((64, 64), seed=6)
        cube.stats.reset()
        cube.prefix_sum((63, 63))
        internal_levels = int(math.log2(64 // cube.leaf_side))
        # Primary-tree visits are exactly the internal levels; secondary
        # structures account for any further node visits.
        assert cube.stats.node_visits >= internal_levels

    def test_primary_navigation_is_logarithmic(self):
        """Primary node visits for n=256 vs n=16 differ by the log ratio."""
        small, _ = build_random((16, 16), seed=7, secondary_kind="fenwick")
        large, _ = build_random((256, 256), seed=7, secondary_kind="fenwick")
        # Fenwick secondaries do not touch node_visits, isolating the
        # primary-tree navigation in the counter.
        small.stats.reset()
        small.prefix_sum((15, 15))
        large.stats.reset()
        large.prefix_sum((255, 255))
        assert small.stats.node_visits == int(math.log2(16 // 2))
        assert large.stats.node_visits == int(math.log2(256 // 2))

    def test_out_of_bounds(self):
        cube = DynamicDataCube((8, 8))
        with pytest.raises(OutOfBoundsError):
            cube.prefix_sum((8, 0))


class TestUpdates:
    def test_add_then_get(self):
        cube = DynamicDataCube((32, 32))
        cube.add((17, 3), 9)
        assert cube.get((17, 3)) == 9
        assert cube.get((3, 17)) == 0
        assert cube.total() == 9

    def test_set_semantics(self):
        cube = DynamicDataCube((8, 8))
        cube.set((2, 2), 5)
        cube.set((2, 2), 3)
        assert cube.get((2, 2)) == 3
        assert cube.total() == 3

    def test_add_zero_allocates_nothing(self):
        cube = DynamicDataCube((32, 32))
        cube.add((5, 5), 0)
        assert cube.memory_cells() == 0

    def test_updates_keep_structure_valid(self):
        cube, array = build_random((16, 16), seed=8)
        rng = np.random.default_rng(9)
        for _ in range(50):
            cell = tuple(int(rng.integers(0, 16)) for _ in range(2))
            delta = int(rng.integers(-5, 6))
            cube.add(cell, delta)
            array[cell] += delta
        cube.validate()
        assert np.array_equal(cube.to_dense(), array)

    def test_worst_case_update_is_polylogarithmic(self):
        """The headline claim: origin updates cost O(log^d n), not O(n^d)."""
        cube = DynamicDataCube((256, 256))
        cube.add((0, 0), 1)  # allocate the path
        cube.stats.reset()
        cube.add((0, 0), 1)
        ops = cube.stats.total_cell_ops
        # (log2 256)^2 = 64; allow a generous constant factor, but stay
        # far below the 65536 cells PS would rewrite.
        assert ops < 1500
        assert ops < 256 * 256 / 40

    def test_update_costs_shrink_after_allocation(self):
        cube = DynamicDataCube((64, 64))
        cube.add((10, 10), 1)
        first_build = cube.stats.total_cell_ops
        cube.stats.reset()
        cube.add((10, 10), 1)
        assert cube.stats.total_cell_ops <= first_build


class TestLeafSideElision:
    """Section 4.4: trading query adds for storage."""

    @pytest.mark.parametrize("leaf_side", [1, 2, 4, 8, 16])
    def test_equivalence_across_leaf_sides(self, leaf_side):
        cube, array = build_random((16, 16), seed=10, leaf_side=leaf_side)
        prefix = array.cumsum(axis=0).cumsum(axis=1)
        rng = np.random.default_rng(11)
        for _ in range(20):
            cell = tuple(int(rng.integers(0, 16)) for _ in range(2))
            assert cube.prefix_sum(cell) == prefix[cell]

    def test_larger_leaves_use_less_memory(self):
        dense = np.ones((64, 64), dtype=np.int64)
        cells = [
            DynamicDataCube.from_array(dense, leaf_side=leaf).memory_cells()
            for leaf in (2, 4, 8, 16)
        ]
        assert cells == sorted(cells, reverse=True)
        # With leaf_side = n the structure is within epsilon of |A|.
        flat = DynamicDataCube.from_array(dense, leaf_side=64)
        assert flat.memory_cells() == 64 * 64

    def test_height_reflects_elision(self):
        cube = DynamicDataCube((64, 64), leaf_side=2)
        elided = DynamicDataCube((64, 64), leaf_side=8)
        assert cube.height() == 5
        assert elided.height() == 3


class TestSecondaryKinds:
    @pytest.mark.parametrize("secondary_kind", ["ddc", "fenwick"])
    @pytest.mark.parametrize("shape", [(16, 16), (8, 8, 8)])
    def test_secondary_kinds_equivalent(self, secondary_kind, shape):
        cube, array = build_random(shape, seed=12, secondary_kind=secondary_kind)
        naive = NaiveArray.from_array(array)
        rng = np.random.default_rng(13)
        for _ in range(15):
            cell = tuple(int(rng.integers(0, s)) for s in shape)
            cube.add(cell, 3)
            naive.add(cell, 3)
        for _ in range(20):
            low = tuple(int(rng.integers(0, s)) for s in shape)
            high = tuple(int(rng.integers(lo, s)) for lo, s in zip(low, shape))
            assert cube.range_sum(low, high) == naive.range_sum(low, high)

    def test_recursive_secondaries_in_three_dims(self):
        """d=3: groups are 2-d, stored in 2-d DDCs whose groups are B^c trees."""
        cube, array = build_random((8, 8, 8), seed=14, secondary_kind="ddc")
        assert cube.prefix_sum((7, 7, 7)) == array.sum()
        cube.validate()


class TestSparsity:
    def test_memory_proportional_to_population(self):
        sparse = DynamicDataCube((256, 256))
        for index in range(16):
            sparse.add((index, index), 1)
        dense_equivalent = 256 * 256
        assert sparse.memory_cells() < dense_equivalent / 20

    def test_cluster_cost_independent_of_domain_size(self):
        small = DynamicDataCube((64, 64))
        huge = DynamicDataCube((4096, 4096))
        for cube in (small, huge):
            for dx in range(4):
                for dy in range(4):
                    cube.add((dx, dy), 5)
        # The huge domain only pays for extra path levels, not area.
        assert huge.memory_cells() < small.memory_cells() * 4


class TestExpansion:
    def test_expand_into_upper_corner(self):
        cube = DynamicDataCube((8, 8))
        cube.add((3, 3), 7)
        cube.expand(0)  # old cube stays at the low corner
        assert cube.shape == (16, 16)
        assert cube.get((3, 3)) == 7
        assert cube.prefix_sum((15, 15)) == 7
        cube.validate()

    def test_expand_into_lower_corner(self):
        cube = DynamicDataCube((8, 8))
        cube.add((3, 3), 7)
        cube.expand(3)  # old cube becomes the high corner in both dims
        assert cube.get((3 + 8, 3 + 8)) == 7
        assert cube.prefix_sum((7, 7)) == 0
        assert cube.prefix_sum((15, 15)) == 7
        cube.validate()

    def test_expand_preserves_random_content(self):
        cube, array = build_random((16, 16), seed=15)
        cube.expand(1)
        padded = np.zeros((32, 32), dtype=np.int64)
        padded[16:32, 0:16] = array  # bit 0 set -> upper half of dim 0
        assert np.array_equal(cube.to_dense(), padded)
        cube.validate()

    def test_expand_empty_cube(self):
        cube = DynamicDataCube((8, 8))
        cube.expand(2)
        assert cube.shape == (16, 16)
        assert cube.total() == 0

    def test_expand_rejects_bad_mask(self):
        cube = DynamicDataCube((8, 8))
        with pytest.raises(ValueError):
            cube.expand(4)

    def test_repeated_expansion_with_updates(self):
        cube = DynamicDataCube((4, 4))
        cube.add((1, 1), 3)
        for corner in (0, 3, 1, 2):
            cube.expand(corner)
            cube.validate()
        assert cube.total() == 3
        # Updates after expansion still work everywhere.
        top = cube.shape[0] - 1
        cube.add((top, top), 2)
        assert cube.total() == 5
        cube.validate()


class TestValidateDetectsCorruption:
    def test_subtotal_corruption_detected(self):
        cube, _ = build_random((16, 16), seed=16)
        node = cube._root
        overlay = next(o for o in node.overlays if o is not None)
        overlay._subtotal += 1
        with pytest.raises(StructureError):
            cube.validate()

    def test_total_corruption_detected(self):
        cube, _ = build_random((16, 16), seed=17)
        cube._total += 1
        with pytest.raises(StructureError):
            cube.validate()


class TestSparseIteration:
    def test_iter_nonzero_matches_dense(self):
        cube, array = build_random((12, 9), seed=20)
        collected = dict(cube.iter_nonzero())
        expected = {
            tuple(int(c) for c in cell): array[tuple(cell)]
            for cell in np.argwhere(array != 0)
        }
        assert collected == expected

    def test_iter_nonzero_skips_padding(self):
        cube = DynamicDataCube((5, 5))
        cube.add((4, 4), 3)
        assert list(cube.iter_nonzero()) == [((4, 4), 3)]

    def test_iter_nonzero_empty_cube(self):
        assert list(DynamicDataCube((8, 8)).iter_nonzero()) == []

    def test_iter_blocks_cover_population(self):
        cube, array = build_random((16, 16), seed=21)
        total = sum(block.sum() for _, block in cube.iter_blocks())
        assert total == array.sum()

    def test_iter_cost_proportional_to_data(self):
        sparse = DynamicDataCube((4096, 4096))
        sparse.add((0, 0), 1)
        sparse.add((4000, 4000), 2)
        items = list(sparse.iter_nonzero())
        assert sorted(items) == [((0, 0), 1), ((4000, 4000), 2)]


class TestStorageBreakdown:
    def test_components_sum_to_memory_cells(self):
        cube, _ = build_random((32, 32), seed=22)
        breakdown = cube.storage_breakdown()
        assert breakdown["total"] == cube.memory_cells()
        assert breakdown["blocks"] + breakdown["subtotals"] + breakdown["groups"] == (
            breakdown["total"]
        )

    def test_dense_cube_blocks_match_domain(self):
        cube, _ = build_random((16, 16), seed=23)
        assert cube.storage_breakdown()["blocks"] == 16 * 16

    def test_empty_cube_breakdown(self):
        cube = DynamicDataCube((16, 16))
        breakdown = cube.storage_breakdown()
        assert breakdown == {"blocks": 0, "subtotals": 0, "groups": 0, "total": 0}

    def test_group_share_shrinks_with_elision(self):
        dense = np.ones((64, 64), dtype=np.int64)
        shares = []
        for leaf_side in (2, 16):
            cube = DynamicDataCube.from_array(dense, leaf_side=leaf_side)
            breakdown = cube.storage_breakdown()
            shares.append(breakdown["groups"] / breakdown["total"])
        assert shares[1] < shares[0]


class TestHighDimensionality:
    """The recursion of Section 4.2 at depth: d-1 nested secondary levels."""

    @pytest.mark.parametrize("dims,side", [(4, 8), (5, 4)])
    def test_matches_naive_in_high_dims(self, dims, side):
        rng = np.random.default_rng(24)
        shape = (side,) * dims
        array = rng.integers(0, 5, size=shape)
        cube = DynamicDataCube.from_array(array)
        naive = NaiveArray.from_array(array)
        for _ in range(10):
            cell = tuple(int(rng.integers(0, side)) for _ in range(dims))
            cube.add(cell, 2)
            naive.add(cell, 2)
        for _ in range(15):
            low = tuple(int(rng.integers(0, side)) for _ in range(dims))
            high = tuple(int(rng.integers(lo, side)) for lo in low)
            assert cube.range_sum(low, high) == naive.range_sum(low, high)
        assert cube.total() == naive.total()

    def test_update_stays_far_below_cube_size_at_d4(self):
        side = 16
        cube = DynamicDataCube((side,) * 4)
        cube.add((0, 0, 0, 0), 1)
        cube.stats.reset()
        cube.add((0, 0, 0, 0), 1)
        # n^d = 65,536 cells; the DDC touches a few hundred at most.
        assert cube.stats.total_cell_ops < side**4 / 50
