"""Tests for the OLAP extensions: dates, variance, bulk ingest, series."""

from __future__ import annotations

import datetime

import numpy as np
import pytest

from repro.exceptions import SchemaError
from repro.olap import (
    CubeSchema,
    DataCube,
    DateDimension,
    IntegerDimension,
)

JAN1 = datetime.date(2025, 1, 1)


@pytest.fixture
def date_dim() -> DateDimension:
    return DateDimension("date", JAN1, 365)


@pytest.fixture
def cube(date_dim) -> DataCube:
    schema = CubeSchema(
        [IntegerDimension("age", 18, 90), date_dim], measure="sales"
    )
    return DataCube(schema, method="ddc", track_sum_squares=True)


class TestDateDimension:
    def test_index_round_trip(self, date_dim):
        assert date_dim.index_of(JAN1) == 0
        assert date_dim.index_of(datetime.date(2025, 12, 31)) == 364
        assert date_dim.value_of(100) == JAN1 + datetime.timedelta(days=100)

    def test_datetime_coerced_to_date(self, date_dim):
        stamp = datetime.datetime(2025, 6, 15, 13, 45)
        assert date_dim.index_of(stamp) == date_dim.index_of(stamp.date())

    def test_out_of_domain(self, date_dim):
        with pytest.raises(SchemaError):
            date_dim.index_of(datetime.date(2024, 12, 31))
        with pytest.raises(SchemaError):
            date_dim.index_of(datetime.date(2026, 1, 1))

    def test_non_date_rejected(self, date_dim):
        with pytest.raises(SchemaError):
            date_dim.index_of("2025-01-01")

    def test_needs_positive_days(self):
        with pytest.raises(SchemaError):
            DateDimension("date", JAN1, 0)

    def test_month_ranges(self, date_dim):
        low, high = date_dim.month(2025, 2)
        assert low == datetime.date(2025, 2, 1)
        assert high == datetime.date(2025, 2, 28)
        low, high = date_dim.month(2025, 12)
        assert high == datetime.date(2025, 12, 31)

    def test_quarter_ranges(self, date_dim):
        assert date_dim.quarter(2025, 1) == (
            datetime.date(2025, 1, 1),
            datetime.date(2025, 3, 31),
        )
        assert date_dim.quarter(2025, 4) == (
            datetime.date(2025, 10, 1),
            datetime.date(2025, 12, 31),
        )
        with pytest.raises(SchemaError):
            date_dim.quarter(2025, 5)

    def test_year_range(self, date_dim):
        assert date_dim.year(2025) == (JAN1, datetime.date(2025, 12, 31))

    def test_ranges_clipped_to_domain(self):
        partial = DateDimension("date", datetime.date(2025, 6, 15), 30)
        low, high = partial.month(2025, 6)
        assert low == datetime.date(2025, 6, 15)
        assert high == datetime.date(2025, 6, 30)

    def test_range_outside_domain_rejected(self):
        partial = DateDimension("date", datetime.date(2025, 6, 15), 30)
        with pytest.raises(SchemaError):
            partial.month(2025, 1)


class TestVariance:
    def test_variance_and_stddev(self, cube):
        for age, amount in [(30, 10.0), (31, 20.0), (32, 30.0)]:
            cube.insert({"age": age, "date": JAN1}, amount)
        # population variance of {10, 20, 30} = 200/3
        assert cube.variance() == pytest.approx(200 / 3)
        assert cube.stddev() == pytest.approx((200 / 3) ** 0.5)

    def test_variance_of_constant_is_zero(self, cube):
        for age in (30, 40, 50):
            cube.insert({"age": age, "date": JAN1}, 7.0)
        assert cube.variance() == pytest.approx(0.0)

    def test_variance_empty_region_is_none(self, cube):
        assert cube.variance() is None
        assert cube.stddev() is None

    def test_variance_respects_range(self, cube, date_dim):
        cube.insert({"age": 30, "date": datetime.date(2025, 1, 5)}, 10.0)
        cube.insert({"age": 30, "date": datetime.date(2025, 2, 5)}, 1000.0)
        january = date_dim.month(2025, 1)
        assert cube.variance(date=january) == pytest.approx(0.0)
        assert cube.variance() > 0

    def test_variance_after_remove(self, cube):
        cube.insert({"age": 30, "date": JAN1}, 10.0)
        cube.insert({"age": 31, "date": JAN1}, 50.0)
        cube.remove({"age": 31, "date": JAN1}, 50.0)
        assert cube.variance() == pytest.approx(0.0)
        assert cube.count() == 1

    def test_variance_requires_tracking(self, date_dim):
        schema = CubeSchema([date_dim], measure="sales")
        plain = DataCube(schema, method="naive")
        with pytest.raises(RuntimeError):
            plain.variance()

    def test_variance_matches_numpy(self, cube, rng):
        amounts = rng.uniform(0, 100, size=40)
        for index, amount in enumerate(amounts):
            cube.insert(
                {"age": 18 + index % 70, "date": JAN1 + datetime.timedelta(int(index))},
                float(amount),
            )
        assert cube.variance() == pytest.approx(float(np.var(amounts)), rel=1e-9)


class TestLoadRecords:
    def test_bulk_ingest(self, cube):
        records = [
            {"age": 30, "date": JAN1, "sales": 10.0},
            {"age": 30, "date": JAN1, "sales": 5.0},
            {"age": 45, "date": datetime.date(2025, 7, 1), "sales": 20.0},
        ]
        assert cube.load_records(records) == 3
        assert cube.sum() == 35.0
        assert cube.count() == 3
        assert cube.cell({"age": 30, "date": JAN1}) == 15.0

    def test_custom_amount_key(self, cube):
        cube.load_records([{"age": 20, "date": JAN1, "revenue": 9.0}], "revenue")
        assert cube.sum() == 9.0

    def test_missing_dimension_rejected(self, cube):
        with pytest.raises(SchemaError):
            cube.load_records([{"age": 20, "sales": 1.0}])

    def test_matches_sequential_inserts(self, date_dim, rng):
        schema = CubeSchema(
            [IntegerDimension("age", 18, 90), date_dim], measure="sales"
        )
        bulk = DataCube(schema, method="ps", track_sum_squares=True)
        sequential = DataCube(schema, method="ps", track_sum_squares=True)
        records = [
            {
                "age": int(rng.integers(18, 91)),
                "date": JAN1 + datetime.timedelta(int(rng.integers(0, 365))),
                "sales": float(rng.integers(1, 100)),
            }
            for _ in range(50)
        ]
        bulk.load_records(records)
        for record in records:
            record = dict(record)
            amount = record.pop("sales")
            sequential.insert(record, amount)
        assert bulk.sum() == sequential.sum()
        assert bulk.count() == sequential.count()
        assert bulk.variance() == pytest.approx(sequential.variance())


class TestSeries:
    def test_series_over_subrange(self, cube):
        for day, amount in [(0, 10.0), (1, 20.0), (3, 5.0)]:
            cube.insert(
                {"age": 30, "date": JAN1 + datetime.timedelta(day)}, amount
            )
        window = (JAN1, JAN1 + datetime.timedelta(3))
        series = cube.series("date", date=window)
        assert [total for _, total in series] == [10.0, 20.0, 0.0, 5.0]
        assert series[0][0] == JAN1

    def test_series_respects_other_conditions(self, cube):
        cube.insert({"age": 20, "date": JAN1}, 1.0)
        cube.insert({"age": 80, "date": JAN1}, 100.0)
        series = cube.series("date", date=(JAN1, JAN1), age=(18, 30))
        assert series == [(JAN1, 1.0)]

    def test_series_single_value_condition(self, cube):
        cube.insert({"age": 20, "date": JAN1}, 3.0)
        series = cube.series("date", date=JAN1)
        assert series == [(JAN1, 3.0)]

    def test_memory_includes_companions(self, cube):
        cube.insert({"age": 20, "date": JAN1}, 3.0)
        with_squares = cube.memory_cells()
        plain = DataCube(cube.schema, method="ddc")
        plain.insert({"age": 20, "date": JAN1}, 3.0)
        assert with_squares > plain.memory_cells()
