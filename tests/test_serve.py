"""The HTTP serving front-end: wire format, coalescing, admission,
shedding, and graceful shutdown.

Every async scenario runs through ``asyncio.run`` inside a plain sync
test (no pytest-asyncio dependency).  Server correctness is checked
end-to-end over real sockets against locally computed range sums; the
concurrency-sensitive behaviours (single-flight, overflow, drain) use
an engine subclass whose reads block on a :class:`threading.Event`, so
the tests control exactly when an in-flight engine call completes.
"""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.engine import FaultInjector, SerialExecutor, ShardedEngine
from repro.engine.resilience import ResiliencePolicy
from repro.exceptions import (
    BadRequestError,
    ConfigurationError,
    UnsupportedMediaTypeError,
)
from repro.obs import ManualClock, Observability, engine_watchdog, evaluate_health
from repro.serve import (
    AdmissionPolicy,
    CubeServer,
    ServeClient,
    SingleFlight,
    TokenBucket,
    codec_for,
    decode_query,
    decode_update,
)
from repro.serve.msgpack_lite import packb, unpackb
from repro.workloads import clustered

SHAPE = (24, 24)


def make_engine(**kwargs):
    data = clustered(SHAPE, seed=3)
    return ShardedEngine.from_array(data, shards=4, **kwargs), data


def run(coro):
    return asyncio.run(coro)


async def serving(engine, policy=None, **kwargs):
    server = CubeServer(engine, policy=policy, **kwargs)
    await server.start()
    return server


class CountingEngine(ShardedEngine):
    """Reads count calls and (optionally) block on an event."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.read_calls = 0
        self.gate_event: threading.Event | None = None

    def range_sum(self, low, high):
        self.read_calls += 1
        if self.gate_event is not None:
            assert self.gate_event.wait(timeout=10.0)
        return super().range_sum(low, high)



# ----------------------------------------------------------------------
# msgpack_lite
# ----------------------------------------------------------------------


class TestMsgpackLite:
    @pytest.mark.parametrize(
        "value",
        [
            None,
            True,
            False,
            0,
            1,
            127,
            128,
            255,
            256,
            65535,
            65536,
            -1,
            -32,
            -33,
            -128,
            -129,
            -(1 << 40),
            1 << 40,
            1.5,
            -2.25,
            "",
            "hello",
            "x" * 40,
            "ünïcødé",
            b"",
            b"\x00\xff" * 10,
            [],
            [1, [2, [3]]],
            {},
            {"a": 1, "b": [True, None]},
            list(range(20)),
            {"k" + str(i): i for i in range(20)},
        ],
    )
    def test_round_trip(self, value):
        assert unpackb(packb(value)) == value

    def test_known_byte_vectors(self):
        # Spot-checks against the MessagePack spec so the fallback
        # interoperates with real msgpack implementations.
        assert packb(None) == b"\xc0"
        assert packb(True) == b"\xc3"
        assert packb(5) == b"\x05"
        assert packb(-3) == b"\xfd"
        assert packb(200) == b"\xcc\xc8"
        assert packb("hi") == b"\xa2hi"
        assert packb([1, 2]) == b"\x92\x01\x02"
        assert packb({"a": 1}) == b"\x81\xa1a\x01"
        assert packb(1.5) == b"\xcb?\xf8\x00\x00\x00\x00\x00\x00"

    def test_truncated_and_trailing_input_rejected(self):
        with pytest.raises(BadRequestError):
            unpackb(packb([1, 2, 3])[:-1])
        with pytest.raises(BadRequestError):
            unpackb(packb(1) + b"\x01")
        with pytest.raises(BadRequestError):
            unpackb(b"")


# ----------------------------------------------------------------------
# Wire validation
# ----------------------------------------------------------------------


class TestWire:
    def test_codec_negotiation(self):
        assert codec_for(None).name == "json"
        assert codec_for("*/*").name == "json"
        assert codec_for("application/json; charset=utf-8").name == "json"
        assert codec_for("application/msgpack").name == "msgpack"
        with pytest.raises(UnsupportedMediaTypeError):
            codec_for("text/csv")

    @pytest.mark.parametrize(
        "payload",
        [
            [],
            {"op": "range_sum", "low": [0, 0]},
            {"op": "range_sum", "low": [0], "high": [1, 1]},
            {"op": "range_sum", "low": [0, "x"], "high": [1, 1]},
            {"op": "nope"},
            {"ranges": []},
            {"ranges": [[[0, 0]]]},
            {"tenant": "", "op": "prefix_sum", "cell": [1, 1]},
        ],
    )
    def test_bad_query_payloads(self, payload):
        with pytest.raises(BadRequestError):
            decode_query(payload, 2)

    @pytest.mark.parametrize(
        "payload",
        [
            {"cell": [1, 1]},
            {"cell": [1], "delta": 1},
            {"cell": [1, 1], "delta": "x"},
            {"updates": []},
            {"updates": [[[1, 1]]]},
        ],
    )
    def test_bad_update_payloads(self, payload):
        with pytest.raises(BadRequestError):
            decode_update(payload, 2)

    def test_good_payloads_normalise(self):
        query = decode_query(
            {"op": "prefix_sum", "cell": [3, 4], "tenant": "t"}, 2
        )
        assert query.ranges == (((0, 0), (3, 4)),)
        update = decode_update({"cell": [1, 2], "delta": 5}, 2)
        assert update.updates == (((1, 2), 5),)


# ----------------------------------------------------------------------
# End-to-end correctness
# ----------------------------------------------------------------------


class TestEndToEnd:
    def test_exact_answers_and_read_your_writes(self):
        engine, data = make_engine()

        async def scenario():
            server = await serving(engine)
            async with ServeClient("127.0.0.1", server.port) as client:
                response = await client.query([2, 3], [10, 12])
                assert response.status == 200
                assert response.body["value"] == int(data[2:11, 3:13].sum())
                assert response.body["partial"] is False
                response = await client.update([5, 5], 7)
                assert response.status == 200
                assert response.body == {"ok": True, "applied": 1}
                response = await client.query([2, 3], [10, 12])
                assert response.body["value"] == int(data[2:11, 3:13].sum()) + 7
                response = await client.query_batch(
                    [((0, 0), (4, 4)), ((5, 5), (9, 9))]
                )
                assert [entry["value"] for entry in response.body["results"]] == [
                    int(data[:5, :5].sum()),
                    int(data[5:10, 5:10].sum()) + 7,
                ]
            await server.stop()

        run(scenario())
        engine.close()

    def test_json_msgpack_parity(self):
        engine, data = make_engine()

        async def scenario():
            server = await serving(engine)
            bodies = []
            for codec in ("json", "msgpack"):
                async with ServeClient(
                    "127.0.0.1", server.port, codec=codec
                ) as client:
                    response = await client.query([0, 0], [9, 9])
                    assert response.status == 200
                    assert (
                        response.headers["content-type"]
                        == f"application/{codec}"
                    )
                    bodies.append(response.body)
                    response = await client.update([1, 1], 0)
                    assert response.status == 200
            assert bodies[0] == bodies[1]
            await server.stop()

        run(scenario())
        engine.close()

    def test_http_errors(self):
        engine, _ = make_engine()

        async def scenario():
            server = await serving(engine)
            async with ServeClient("127.0.0.1", server.port) as client:
                response = await client.request("GET", "/nope")
                assert response.status == 404
                response = await client.request("GET", "/query")
                assert response.status == 405
                response = await client.request("POST", "/query", {"op": "bad"})
                assert response.status == 400
                assert "unknown op" in response.body["error"]
                response = await client.request(
                    "POST", "/query", {"op": "range_sum", "low": [0], "high": [1]}
                )
                assert response.status == 400  # dimension mismatch
            await server.stop()

        run(scenario())
        engine.close()

    def test_metrics_endpoint_both_formats(self):
        engine, _ = make_engine()

        async def scenario():
            server = await serving(engine)
            async with ServeClient("127.0.0.1", server.port) as client:
                await client.query([0, 0], [5, 5])
                response = await client.metrics()
                assert response.status == 200
                assert "repro_serve_requests_total" in response.body
                assert "repro_serve_coalesced_total" in response.body
                response = await client.metrics("json")
                assert response.status == 200
                assert response.body["serve"]["coalesce_leaders"] >= 1
            await server.stop()

        run(scenario())
        engine.close()


# ----------------------------------------------------------------------
# Single-flight coalescing
# ----------------------------------------------------------------------


class TestCoalescing:
    def test_n_concurrent_identical_queries_one_engine_call(self):
        engine = CountingEngine.from_array(clustered(SHAPE, seed=3), shards=4)
        engine.gate_event = threading.Event()
        followers = 8

        async def scenario():
            server = await serving(engine)
            clients = [
                ServeClient("127.0.0.1", server.port)
                for _ in range(followers + 1)
            ]
            tasks = [
                asyncio.create_task(client.query([1, 1], [20, 20]))
                for client in clients
            ]
            # Wait until every follower has joined the leader's flight,
            # then let the single engine call finish.
            while server.flights.followers < followers:
                await asyncio.sleep(0.005)
            engine.gate_event.set()
            responses = await asyncio.gather(*tasks)
            values = {response.body["value"] for response in responses}
            assert len(values) == 1
            assert all(response.status == 200 for response in responses)
            coalesced = [r.body["coalesced"] for r in responses]
            assert coalesced.count(True) == followers
            assert coalesced.count(False) == 1
            for client in clients:
                await client.close()
            await server.stop()

        run(scenario())
        assert engine.read_calls == 1
        engine.close()

    def test_different_tenants_do_not_coalesce(self):
        engine = CountingEngine.from_array(clustered(SHAPE, seed=3), shards=4)

        async def scenario():
            server = await serving(engine)
            a = ServeClient("127.0.0.1", server.port, tenant="a")
            b = ServeClient("127.0.0.1", server.port, tenant="b")
            ra, rb = await asyncio.gather(
                a.query([0, 0], [10, 10]), b.query([0, 0], [10, 10])
            )
            assert ra.body["value"] == rb.body["value"]
            assert server.flights.leaders == 2
            await a.close()
            await b.close()
            await server.stop()

        run(scenario())
        assert engine.read_calls == 2
        engine.close()

    def test_single_flight_exception_propagates_and_clears(self):
        async def scenario():
            flight = SingleFlight()

            async def boom():
                raise ValueError("x")

            with pytest.raises(ValueError):
                await flight.run("k", boom)
            assert len(flight) == 0

            async def fine():
                return 41

            value, coalesced = await flight.run("k", fine)
            assert (value, coalesced) == (41, False)

        run(scenario())


# ----------------------------------------------------------------------
# Admission control
# ----------------------------------------------------------------------


class TestAdmission:
    def test_policy_validation(self):
        with pytest.raises(ConfigurationError):
            AdmissionPolicy(tenant_rate=-1)
        with pytest.raises(ConfigurationError):
            AdmissionPolicy(max_concurrency=0)
        with pytest.raises(ConfigurationError):
            AdmissionPolicy(shed_watermark=-0.1)

    def test_token_bucket_refills_on_clock(self):
        bucket = TokenBucket(rate=2.0, burst=2, now=0.0)
        assert bucket.try_acquire(0.0) == 0.0
        assert bucket.try_acquire(0.0) == 0.0
        retry = bucket.try_acquire(0.0)
        assert retry == pytest.approx(0.5)
        assert bucket.try_acquire(0.5) == 0.0  # one token accrued
        assert bucket.try_acquire(0.5) > 0.0

    def test_over_rate_tenant_gets_429_with_retry_after(self):
        clock = ManualClock()
        obs = Observability(clock=clock)
        engine, _ = make_engine(obs=obs)
        policy = AdmissionPolicy(tenant_rate=1.0, tenant_burst=2)

        async def scenario():
            server = await serving(engine, policy=policy, obs=obs)
            async with ServeClient(
                "127.0.0.1", server.port, tenant="greedy"
            ) as client:
                for _ in range(2):
                    response = await client.query([0, 0], [3, 3])
                    assert response.status == 200
                response = await client.query([0, 0], [3, 3])
                assert response.status == 429
                assert response.retry_after == pytest.approx(1.0)
                # A different tenant is unaffected.
                async with ServeClient(
                    "127.0.0.1", server.port, tenant="patient"
                ) as other:
                    response = await other.query([0, 0], [3, 3])
                    assert response.status == 200
                # Tokens accrue on the injected clock.
                clock.advance(1.0)
                response = await client.query([0, 0], [3, 3])
                assert response.status == 200
            assert server.buckets.throttled == 1
            await server.stop()

        run(scenario())
        engine.close()

    def test_overflow_gets_503_with_retry_after(self):
        engine = CountingEngine.from_array(clustered(SHAPE, seed=3), shards=4)
        engine.gate_event = threading.Event()
        policy = AdmissionPolicy(
            max_concurrency=1, max_queue=0, retry_after_seconds=2.0
        )

        async def scenario():
            server = await serving(engine, policy=policy)
            blocker = ServeClient("127.0.0.1", server.port)
            # Occupy the only slot with a distinct range, then overflow
            # with a different one (same range would coalesce, not shed).
            blocked = asyncio.create_task(blocker.query([0, 0], [1, 1]))
            while server.gate.inflight == 0:
                await asyncio.sleep(0.005)
            async with ServeClient("127.0.0.1", server.port) as client:
                response = await client.query([2, 2], [3, 3])
                assert response.status == 503
                assert response.retry_after == pytest.approx(2.0)
            engine.gate_event.set()
            response = await blocked
            assert response.status == 200
            await blocker.close()
            assert server.gate.rejected == 1
            await server.stop()

        run(scenario())
        engine.close()


# ----------------------------------------------------------------------
# Load shedding: strict -> partial under pressure
# ----------------------------------------------------------------------


class TestShedding:
    def _faulty_engine(self):
        clock = ManualClock()
        obs = Observability(clock=clock)
        injector = FaultInjector(SerialExecutor(), clock=clock, fault_rate=1.0)
        engine = ShardedEngine.from_array(
            clustered(SHAPE, seed=3),
            shards=4,
            obs=obs,
            resilience=ResiliencePolicy(
                degradation="strict", max_retries=0, breaker_window=0
            ),
            executor=injector,
        )
        return engine, obs

    def test_under_pressure_strict_degrades_to_partial(self):
        engine, obs = self._faulty_engine()
        policy = AdmissionPolicy(shed_watermark=0.0)  # always shedding

        async def scenario():
            server = await serving(engine, policy=policy, obs=obs)
            async with ServeClient("127.0.0.1", server.port) as client:
                response = await client.query([0, 0], [20, 20])
                assert response.status == 200
                assert response.body["partial"] is True
                assert response.body["shed"] is True
                assert response.body["missing_shards"]
            assert server.shedding
            assert server.shed_entries >= 1
            await server.stop()

        run(scenario())
        assert engine.policy.degradation == "partial"
        engine.close()

    def test_without_pressure_strict_failures_surface_as_500(self):
        engine, obs = self._faulty_engine()
        policy = AdmissionPolicy(shed_watermark=100.0)  # never sheds

        async def scenario():
            server = await serving(engine, policy=policy, obs=obs)
            async with ServeClient("127.0.0.1", server.port) as client:
                response = await client.query([0, 0], [20, 20])
                assert response.status == 500
                assert "shard" in response.body["error"]
            assert not server.shedding
            await server.stop()

        run(scenario())
        assert engine.policy.degradation == "strict"
        engine.close()


# ----------------------------------------------------------------------
# Health
# ----------------------------------------------------------------------


class TestHealthz:
    def test_healthz_matches_shared_evaluator(self):
        obs = Observability()
        engine, _ = make_engine(obs=obs)

        async def scenario():
            server = await serving(engine, obs=obs)
            async with ServeClient("127.0.0.1", server.port) as client:
                await client.query([0, 0], [5, 5])
                response = await client.healthz()
                assert response.status == 200
                assert response.body["healthy"] is True
                assert response.body["status"] == "ok"
                assert response.body["rules"]
            # The CLI-side evaluation over the same watchdog agrees.
            document = evaluate_health(server.watchdog, engine)
            assert document["healthy"] is True
            await server.stop()

        run(scenario())
        engine.close()

    def test_engine_watchdog_wires_harvest(self):
        obs = Observability()
        engine, _ = make_engine(obs=obs)
        watchdog = engine_watchdog(obs, engine)
        document = evaluate_health(watchdog, engine)
        assert document["healthy"] is True
        assert watchdog.checks == 1
        engine.close()


# ----------------------------------------------------------------------
# Graceful shutdown
# ----------------------------------------------------------------------


class TestShutdown:
    def test_drain_completes_inflight_requests(self):
        engine = CountingEngine.from_array(clustered(SHAPE, seed=3), shards=4)
        engine.gate_event = threading.Event()

        async def scenario():
            server = await serving(engine)
            client = ServeClient("127.0.0.1", server.port)
            inflight = asyncio.create_task(client.query([0, 0], [10, 10]))
            while server.gate.inflight == 0:
                await asyncio.sleep(0.005)
            # Release the engine call shortly after stop() starts
            # draining, then verify the response was still delivered.
            stopper = asyncio.create_task(server.stop())
            await asyncio.sleep(0.05)
            engine.gate_event.set()
            await stopper
            response = await inflight
            assert response.status == 200
            await client.close()
            # A fresh connection is refused once stopped.
            with pytest.raises((ConnectionError, OSError)):
                probe = ServeClient("127.0.0.1", server.port)
                await probe.query([0, 0], [1, 1])

        run(scenario())
        engine.close()
