"""Unit tests for the baseline methods (naive, PS, RPS, Fenwick)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import (
    InvalidRangeError,
    InvalidShapeError,
    OutOfBoundsError,
    UnknownMethodError,
)
from repro.methods import (
    FenwickCube,
    NaiveArray,
    PrefixSumCube,
    RelativePrefixSumCube,
    build_method,
    create_method,
    method_class,
    method_names,
)

PAPER_ARRAY = np.array(
    # An 8x8 example array in the style of the paper's Figure 2 (the
    # figure's exact cell values are not recoverable from the text).
    [
        [3, 4, 2, 2, 5, 3, 2, 1],
        [2, 7, 3, 8, 4, 2, 9, 4],
        [5, 2, 1, 2, 3, 1, 2, 4],
        [2, 4, 3, 4, 5, 7, 4, 3],
        [6, 1, 2, 3, 4, 2, 1, 3],
        [4, 3, 5, 2, 2, 4, 5, 6],
        [2, 5, 2, 4, 3, 1, 3, 2],
        [1, 2, 4, 2, 1, 3, 2, 4],
    ],
    dtype=np.int64,
)


class TestRegistry:
    def test_all_methods_registered(self):
        assert method_names() == [
            "basic-ddc",
            "ddc",
            "fenwick",
            "naive",
            "ps",
            "rps",
            "segtree",
            "vector",
        ]

    def test_unknown_method(self):
        with pytest.raises(UnknownMethodError):
            method_class("btree-of-doom")

    def test_create_and_build(self):
        empty = create_method("ps", (4, 4))
        assert empty.total() == 0
        built = build_method("ps", PAPER_ARRAY)
        assert built.total() == PAPER_ARRAY.sum()

    def test_names_match_classes(self):
        for name in method_names():
            assert method_class(name).name == name


class TestCommonBehaviour:
    """Contract tests executed against every registered method."""

    def test_empty_cube_sums_to_zero(self, method_name):
        method = create_method(method_name, (5, 6))
        assert method.total() == 0
        assert method.range_sum((0, 0), (4, 5)) == 0

    def test_single_add_visible_everywhere(self, method_name):
        method = create_method(method_name, (8, 8))
        method.add((3, 4), 7)
        assert method.get((3, 4)) == 7
        assert method.prefix_sum((7, 7)) == 7
        assert method.prefix_sum((2, 7)) == 0
        assert method.range_sum((3, 4), (3, 4)) == 7

    def test_set_overwrites(self, method_name):
        method = create_method(method_name, (4, 4))
        method.set((1, 1), 10)
        method.set((1, 1), 4)
        assert method.get((1, 1)) == 4
        assert method.total() == 4

    def test_negative_values_supported(self, method_name):
        method = create_method(method_name, (4, 4))
        method.add((0, 0), -5)
        method.add((3, 3), 2)
        assert method.total() == -3

    def test_out_of_bounds_rejected(self, method_name):
        method = create_method(method_name, (4, 4))
        with pytest.raises(OutOfBoundsError):
            method.add((4, 0), 1)
        with pytest.raises(OutOfBoundsError):
            method.prefix_sum((0, 4))

    def test_inverted_range_rejected(self, method_name):
        method = create_method(method_name, (4, 4))
        with pytest.raises(InvalidRangeError):
            method.range_sum((2, 2), (1, 3))

    def test_invalid_shape_rejected(self, method_name):
        with pytest.raises(InvalidShapeError):
            create_method(method_name, (0, 4))

    def test_from_array_round_trip(self, method_name):
        method = method_class(method_name).from_array(PAPER_ARRAY)
        assert np.array_equal(method.to_dense(), PAPER_ARRAY)

    def test_prefix_matches_dense_cumsum(self, method_name):
        """Every prefix cell equals the dense double-cumsum (array P)."""
        method = method_class(method_name).from_array(PAPER_ARRAY)
        prefix = PAPER_ARRAY.cumsum(axis=0).cumsum(axis=1)
        for cell in [(0, 0), (3, 3), (6, 6), (7, 7), (0, 7), (7, 0), (2, 5)]:
            assert method.prefix_sum(cell) == prefix[cell]

    def test_one_dimensional_cube(self, method_name):
        method = create_method(method_name, (16,))
        for index in range(16):
            method.add((index,), index)
        assert method.prefix_sum((7,)) == sum(range(8))
        assert method.range_sum((4,), (11,)) == sum(range(4, 12))

    def test_float_dtype(self, method_name):
        method = create_method(method_name, (4, 4), dtype=np.float64)
        method.add((1, 2), 2.5)
        method.add((2, 1), 0.25)
        assert method.total() == pytest.approx(2.75)

    def test_memory_cells_positive_after_build(self, method_name):
        method = method_class(method_name).from_array(PAPER_ARRAY)
        assert method.memory_cells() >= PAPER_ARRAY.size // 2


class TestNaive:
    def test_query_cost_proportional_to_region(self):
        naive = NaiveArray.from_array(PAPER_ARRAY)
        naive.stats.reset()
        naive.range_sum((0, 0), (3, 3))
        assert naive.stats.cell_reads == 16

    def test_update_cost_is_one(self):
        naive = NaiveArray((8, 8))
        naive.stats.reset()
        naive.add((5, 5), 3)
        assert naive.stats.cell_writes == 1

    def test_to_dense_is_copy(self):
        naive = NaiveArray.from_array(PAPER_ARRAY)
        dense = naive.to_dense()
        dense[0, 0] = 999
        assert naive.get((0, 0)) == PAPER_ARRAY[0, 0]


class TestPrefixSum:
    def test_prefix_array_matches_figure3(self):
        """Spot-check cells of the paper's array P."""
        ps = PrefixSumCube.from_array(PAPER_ARRAY)
        # P[i,j] = SUM(A[0,0]:A[i,j])
        assert ps.prefix_sum((0, 0)) == 3
        assert ps.prefix_sum((1, 1)) == 16  # 3+4+2+7
        assert ps.prefix_sum((7, 7)) == PAPER_ARRAY.sum()

    def test_query_reads_constant_cells(self):
        ps = PrefixSumCube.from_array(PAPER_ARRAY)
        ps.stats.reset()
        ps.range_sum((2, 2), (5, 5))
        assert ps.stats.cell_reads == 4  # 2^d corners in 2-d

    def test_worst_case_update_touches_whole_cube(self):
        """Figure 5: updating A[0,0] rewrites every cell of P."""
        ps = PrefixSumCube.from_array(PAPER_ARRAY)
        ps.stats.reset()
        ps.add((0, 0), 1)
        assert ps.stats.cell_writes == 64

    def test_corner_update_touches_one_cell(self):
        ps = PrefixSumCube.from_array(PAPER_ARRAY)
        ps.stats.reset()
        ps.add((7, 7), 1)
        assert ps.stats.cell_writes == 1

    def test_update_region_shape(self):
        """Updating A[1,1] touches the dominated (shaded) region only."""
        ps = PrefixSumCube.from_array(PAPER_ARRAY)
        ps.stats.reset()
        ps.add((1, 1), 1)
        assert ps.stats.cell_writes == 49  # 7 x 7


class TestRelativePrefixSum:
    def test_default_block_side_near_sqrt(self):
        rps = RelativePrefixSumCube((64, 64))
        assert rps.block_side == (8, 8)

    def test_explicit_block_side(self):
        rps = RelativePrefixSumCube((64, 64), block_side=4)
        assert rps.block_side == (4, 4)
        assert rps.block_counts == (16, 16)

    def test_block_side_validation(self):
        with pytest.raises(ValueError):
            RelativePrefixSumCube((8, 8), block_side=(4,))
        with pytest.raises(ValueError):
            RelativePrefixSumCube((8, 8), block_side=0)

    def test_query_reads_2d_components(self):
        rps = RelativePrefixSumCube.from_array(PAPER_ARRAY, block_side=4)
        rps.stats.reset()
        rps.prefix_sum((5, 5))
        assert rps.stats.cell_reads == 4  # local + 3 boundary families

    def test_update_bounded_by_block_structure(self):
        """Worst-case update touches O(n^(d/2)) cells, far below n^d."""
        side = 64
        rps = RelativePrefixSumCube((side, side), block_side=8)
        rps.stats.reset()
        rps.add((0, 0), 1)
        writes = rps.stats.cell_writes
        # local block 8x8 = 64; families bounded by 8*64/8 etc.
        assert writes < side * side / 4
        assert writes >= 64

    def test_non_square_shapes(self):
        rng = np.random.default_rng(7)
        array = rng.integers(0, 9, size=(13, 30))
        rps = RelativePrefixSumCube.from_array(array)
        assert rps.prefix_sum((12, 29)) == array.sum()
        assert np.array_equal(rps.to_dense(), array)

    def test_update_then_query_consistency(self):
        rps = RelativePrefixSumCube.from_array(PAPER_ARRAY, block_side=4)
        rps.add((2, 3), 10)
        assert rps.get((2, 3)) == PAPER_ARRAY[2, 3] + 10
        assert rps.prefix_sum((7, 7)) == PAPER_ARRAY.sum() + 10


class TestFenwick:
    def test_update_cost_logarithmic(self):
        fenwick = FenwickCube((1024, 1024))
        fenwick.stats.reset()
        fenwick.add((0, 0), 1)
        # <= (log2 n + 1)^2 touched cells
        assert fenwick.stats.cell_writes <= 121

    def test_query_cost_logarithmic(self):
        fenwick = FenwickCube.from_array(np.ones((256, 256), dtype=np.int64))
        fenwick.stats.reset()
        assert fenwick.prefix_sum((255, 255)) == 256 * 256
        assert fenwick.stats.cell_reads <= 81

    def test_bulk_build_matches_incremental(self):
        rng = np.random.default_rng(3)
        array = rng.integers(0, 9, size=(9, 17))
        bulk = FenwickCube.from_array(array)
        incremental = FenwickCube(array.shape)
        for cell in np.ndindex(*array.shape):
            if array[cell]:
                incremental.add(cell, int(array[cell]))
        assert np.array_equal(bulk._tree, incremental._tree)

    def test_three_dimensional(self):
        rng = np.random.default_rng(4)
        array = rng.integers(0, 5, size=(6, 7, 8))
        fenwick = FenwickCube.from_array(array)
        assert fenwick.prefix_sum((5, 6, 7)) == array.sum()
        assert fenwick.range_sum((1, 2, 3), (4, 5, 6)) == array[1:5, 2:6, 3:7].sum()
