"""Tests for the OLAP front-end: schemas, DataCube facade, aggregates."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import SchemaError
from repro.olap import (
    SUM,
    XOR,
    AggregateResult,
    BinnedDimension,
    CategoricalDimension,
    CubeSchema,
    DataCube,
    IntegerDimension,
    rolling_windows,
)


@pytest.fixture
def sales_schema() -> CubeSchema:
    return CubeSchema(
        [IntegerDimension("age", 18, 80), IntegerDimension("day", 0, 30)],
        measure="sales",
    )


class TestIntegerDimension:
    def test_mapping(self):
        dim = IntegerDimension("age", 18, 80)
        assert dim.size == 63
        assert dim.index_of(18) == 0
        assert dim.index_of(80) == 62
        assert dim.value_of(5) == 23

    def test_out_of_domain(self):
        dim = IntegerDimension("age", 18, 80)
        with pytest.raises(SchemaError):
            dim.index_of(17)
        with pytest.raises(SchemaError):
            dim.value_of(63)

    def test_invalid_bounds(self):
        with pytest.raises(SchemaError):
            IntegerDimension("age", 10, 5)

    def test_index_range(self):
        dim = IntegerDimension("day", 0, 364)
        assert dim.index_range(7, 31) == (7, 31)
        with pytest.raises(SchemaError):
            dim.index_range(31, 7)


class TestCategoricalDimension:
    def test_mapping_preserves_order(self):
        dim = CategoricalDimension("region", ["west", "central", "east"])
        assert dim.size == 3
        assert dim.index_of("central") == 1
        assert dim.value_of(2) == "east"

    def test_unknown_value(self):
        dim = CategoricalDimension("region", ["west"])
        with pytest.raises(SchemaError):
            dim.index_of("north")

    def test_duplicates_rejected(self):
        with pytest.raises(SchemaError):
            CategoricalDimension("region", ["west", "west"])

    def test_empty_rejected(self):
        with pytest.raises(SchemaError):
            CategoricalDimension("region", [])


class TestBinnedDimension:
    def test_binning(self):
        dim = BinnedDimension("longitude", origin=-180.0, width=1.0, bins=360)
        assert dim.size == 360
        assert dim.index_of(-180.0) == 0
        assert dim.index_of(-179.5) == 0
        assert dim.index_of(0.0) == 180
        assert dim.index_of(180.0) == 359  # inclusive upper edge

    def test_outside_domain(self):
        dim = BinnedDimension("x", origin=0.0, width=1.0, bins=10)
        with pytest.raises(SchemaError):
            dim.index_of(-0.1)
        with pytest.raises(SchemaError):
            dim.index_of(10.5)

    def test_midpoint_representative(self):
        dim = BinnedDimension("x", origin=0.0, width=2.0, bins=5)
        assert dim.value_of(0) == 1.0
        assert dim.value_of(4) == 9.0

    def test_validation(self):
        with pytest.raises(SchemaError):
            BinnedDimension("x", 0.0, 0.0, 4)
        with pytest.raises(SchemaError):
            BinnedDimension("x", 0.0, 1.0, 0)


class TestCubeSchema:
    def test_shape(self, sales_schema):
        assert sales_schema.shape == (63, 31)
        assert sales_schema.names == ["age", "day"]

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            CubeSchema([IntegerDimension("a", 0, 1), IntegerDimension("a", 0, 1)])

    def test_empty_rejected(self):
        with pytest.raises(SchemaError):
            CubeSchema([])

    def test_cell_for(self, sales_schema):
        assert sales_schema.cell_for({"age": 20, "day": 3}) == (2, 3)
        with pytest.raises(SchemaError):
            sales_schema.cell_for({"age": 20})
        with pytest.raises(SchemaError):
            sales_schema.cell_for({"age": 20, "day": 3, "region": "x"})

    def test_ranges_for_defaults_to_full(self, sales_schema):
        low, high = sales_schema.ranges_for({})
        assert low == (0, 0)
        assert high == (62, 30)

    def test_ranges_for_mixed_conditions(self, sales_schema):
        low, high = sales_schema.ranges_for({"age": (27, 45), "day": 7})
        assert low == (9, 7)
        assert high == (27, 7)

    def test_axis_of(self, sales_schema):
        assert sales_schema.axis_of("day") == 1
        with pytest.raises(SchemaError):
            sales_schema.axis_of("region")


class TestDataCube:
    @pytest.fixture(params=["ddc", "ps", "naive"])
    def cube(self, request, sales_schema) -> DataCube:
        return DataCube(sales_schema, method=request.param)

    def test_insert_and_sum(self, cube):
        cube.insert({"age": 27, "day": 7}, 100.0)
        cube.insert({"age": 45, "day": 31 - 1}, 50.0)
        cube.insert({"age": 70, "day": 0}, 999.0)
        assert cube.sum(age=(27, 45)) == 150.0
        assert cube.sum() == 1149.0

    def test_paper_motivating_query(self, cube):
        """Average daily sales to 27-45 year olds over a date range."""
        cube.insert({"age": 30, "day": 7}, 120.0)
        cube.insert({"age": 40, "day": 8}, 80.0)
        cube.insert({"age": 60, "day": 9}, 500.0)  # outside the age range
        result = cube.aggregate(age=(27, 45), day=(7, 30))
        assert result.total == 200.0
        assert result.count == 2
        assert result.average == 100.0

    def test_average_of_empty_region_is_none(self, cube):
        assert cube.average(age=(27, 45)) is None

    def test_remove_retracts(self, cube):
        cube.insert({"age": 27, "day": 7}, 100.0)
        cube.remove({"age": 27, "day": 7}, 100.0)
        assert cube.sum() == 0.0
        assert cube.count() == 0

    def test_cell_lookup(self, cube):
        cube.insert({"age": 27, "day": 7}, 100.0)
        cube.insert({"age": 27, "day": 7}, 20.0)
        assert cube.cell({"age": 27, "day": 7}) == 120.0

    def test_set_cell(self, cube):
        cube.set_cell({"age": 27, "day": 7}, 77.0, count=3)
        assert cube.sum(age=27, day=7) == 77.0
        assert cube.count(age=27) == 3

    def test_count_disabled(self, sales_schema):
        cube = DataCube(sales_schema, method="naive", track_count=False)
        cube.insert({"age": 27, "day": 7}, 1.0)
        with pytest.raises(RuntimeError):
            cube.count()

    def test_rolling_sum(self, cube):
        for day in range(5):
            cube.insert({"age": 30, "day": day}, float(day))
        series = cube.rolling_sum("day", 2, day=(0, 4))
        assert [total for _, total in series] == [1.0, 3.0, 5.0, 7.0]
        assert [start for start, _ in series] == [0, 1, 2, 3]

    def test_rolling_average(self, cube):
        for day in range(4):
            cube.insert({"age": 30, "day": day}, 10.0 * (day + 1))
        series = cube.rolling_average("day", 2, day=(0, 3))
        assert series[0] == (0, pytest.approx(15.0))
        assert series[-1] == (2, pytest.approx(35.0))

    def test_rolling_requires_tuple_condition(self, cube):
        with pytest.raises(ValueError):
            cube.rolling_sum("day", 2, day=5)

    def test_memory_cells_reported(self, cube):
        cube.insert({"age": 27, "day": 7}, 1.0)
        assert cube.memory_cells() > 0


class TestMethodsAgreeThroughOlap:
    def test_same_answers_across_methods(self, sales_schema, rng):
        cubes = [
            DataCube(sales_schema, method=name)
            for name in ("naive", "ps", "rps", "fenwick", "basic-ddc", "ddc")
        ]
        for _ in range(60):
            point = {
                "age": int(rng.integers(18, 81)),
                "day": int(rng.integers(0, 31)),
            }
            amount = float(rng.integers(1, 500))
            for cube in cubes:
                cube.insert(point, amount)
        answers = {cube.method_name: cube.sum(age=(25, 60), day=(3, 20)) for cube in cubes}
        assert len({round(a, 6) for a in answers.values()}) == 1, answers


class TestAggregates:
    def test_group_operator_fold(self):
        assert SUM.fold([1, 2, 3]) == 6
        assert XOR.fold([5, 3]) == 6
        assert SUM.invert(SUM.combine(10, 4), 4) == 10

    def test_aggregate_result(self):
        assert AggregateResult(total=10, count=4).average == 2.5
        assert AggregateResult(total=0, count=0).average is None

    def test_rolling_windows(self):
        assert rolling_windows(4, 2) == [(0, 1), (1, 2), (2, 3)]
        assert rolling_windows(3, 3) == [(0, 2)]
        with pytest.raises(ValueError):
            rolling_windows(2, 3)
        with pytest.raises(ValueError):
            rolling_windows(2, 0)
