"""Tests for the model-calibration fitting utilities."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.model.calibration import (
    classify_growth,
    constant_factor,
    fit_polylog,
    fit_power_law,
)


def power_series(exponent, coefficient=3.0, ns=(16, 32, 64, 128, 256, 512)):
    return list(ns), [coefficient * n**exponent for n in ns]


def polylog_series(exponent, coefficient=2.0, ns=(16, 32, 64, 128, 256, 512)):
    return list(ns), [coefficient * math.log2(n) ** exponent for n in ns]


class TestFitPowerLaw:
    @pytest.mark.parametrize("exponent", [0.5, 1.0, 2.0, 3.0])
    def test_recovers_exact_exponent(self, exponent):
        ns, costs = power_series(exponent)
        fit = fit_power_law(ns, costs)
        assert fit.exponent == pytest.approx(exponent, abs=1e-9)
        assert fit.coefficient == pytest.approx(3.0, rel=1e-6)
        assert fit.residual < 1e-9

    def test_predict(self):
        ns, costs = power_series(2.0)
        fit = fit_power_law(ns, costs)
        assert fit.predict(1024) == pytest.approx(3.0 * 1024**2, rel=1e-6)

    def test_noisy_series_still_close(self, rng):
        ns, costs = power_series(2.0)
        noisy = [c * float(rng.uniform(0.9, 1.1)) for c in costs]
        fit = fit_power_law(ns, noisy)
        assert fit.exponent == pytest.approx(2.0, abs=0.15)
        assert fit.residual > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            fit_power_law([2, 4], [1, 2])  # too few points
        with pytest.raises(ValueError):
            fit_power_law([1, 2, 4], [1, 2, 3])  # n <= 1
        with pytest.raises(ValueError):
            fit_power_law([2, 4, 8], [1, 0, 3])  # non-positive cost
        with pytest.raises(ValueError):
            fit_power_law([2, 4, 8], [1, 2])  # length mismatch


class TestFitPolylog:
    @pytest.mark.parametrize("exponent", [1.0, 2.0, 3.0])
    def test_recovers_exact_exponent(self, exponent):
        ns, costs = polylog_series(exponent)
        fit = fit_polylog(ns, costs)
        assert fit.exponent == pytest.approx(exponent, abs=1e-4)
        assert fit.coefficient == pytest.approx(2.0, rel=1e-3)

    def test_predict(self):
        ns, costs = polylog_series(2.0)
        fit = fit_polylog(ns, costs)
        assert fit.predict(1024) == pytest.approx(2.0 * 10**2, rel=1e-3)


class TestClassifyGrowth:
    def test_polynomial_series_classified(self):
        ns, costs = power_series(2.0)
        result = classify_growth(ns, costs)
        assert result.family == "polynomial"
        assert result.fitted_exponent == pytest.approx(2.0, abs=0.05)

    def test_polylog_series_classified(self):
        ns, costs = polylog_series(2.0)
        result = classify_growth(ns, costs)
        assert result.family == "polylogarithmic"
        assert result.fitted_exponent == pytest.approx(2.0, abs=0.2)

    def test_linear_series_is_polynomial(self):
        ns, costs = power_series(1.0)
        assert classify_growth(ns, costs).family == "polynomial"

    def test_measured_ddc_series_is_polylog(self):
        """The actual d=2 measurements from the F1 experiment."""
        ns = [32, 64, 128, 256, 512]
        measured = [13, 18, 23, 28, 33]
        assert classify_growth(ns, measured).family == "polylogarithmic"

    def test_measured_ps_series_is_polynomial(self):
        ns = [32, 64, 128, 256, 512]
        measured = [1024, 4096, 16384, 65536, 262144]
        result = classify_growth(ns, measured)
        assert result.family == "polynomial"
        assert result.fitted_exponent == pytest.approx(2.0, abs=0.01)


class TestConstantFactor:
    def test_exact_rescaling(self):
        modelled = [10.0, 20.0, 40.0]
        measured = [25.0, 50.0, 100.0]
        factor, spread = constant_factor(measured, modelled)
        assert factor == pytest.approx(2.5)
        assert spread == pytest.approx(0.0, abs=1e-12)

    def test_spread_reflects_noise(self):
        modelled = [10.0, 20.0, 40.0]
        measured = [20.0, 50.0, 70.0]
        _, spread = constant_factor(measured, modelled)
        assert spread > 0.05

    def test_validation(self):
        with pytest.raises(ValueError):
            constant_factor([1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            constant_factor([], [])
        with pytest.raises(ValueError):
            constant_factor([1.0, -1.0], [1.0, 1.0])
