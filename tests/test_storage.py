"""Tests for the simulated buffer pool / page-access substrate."""

from __future__ import annotations

import pytest

from repro import DynamicDataCube
from repro.core.bc_tree import BcTree
from repro.storage import BufferPool, BufferStats, attach_pool, detach_pool
from repro.workloads import dense_uniform


class TestBufferStats:
    def test_hit_rate_idle(self):
        assert BufferStats().hit_rate == 0.0

    def test_hit_rate(self):
        stats = BufferStats(accesses=10, hits=7, misses=3)
        assert stats.hit_rate == 0.7

    def test_reset(self):
        stats = BufferStats(accesses=5, hits=2, misses=3, evictions=1)
        stats.reset()
        assert stats.accesses == stats.hits == stats.misses == stats.evictions == 0


class TestBufferPool:
    def test_validation(self):
        with pytest.raises(ValueError):
            BufferPool(capacity=0)
        with pytest.raises(ValueError):
            BufferPool(capacity=4, objects_per_page=0)

    def test_first_touch_misses_then_hits(self):
        pool = BufferPool(capacity=4)
        marker = object()
        assert pool.access(marker) is False
        assert pool.access(marker) is True
        assert pool.stats.accesses == 2
        assert pool.stats.hits == 1
        assert pool.stats.misses == 1

    def test_lru_eviction_order(self):
        pool = BufferPool(capacity=2)
        first, second, third = object(), object(), object()
        pool.access(first)
        pool.access(second)
        pool.access(first)  # first becomes most recent
        pool.access(third)  # evicts second
        assert pool.stats.evictions == 1
        assert pool.access(first) is True
        assert pool.access(second) is False  # had been evicted

    def test_objects_share_pages(self):
        pool = BufferPool(capacity=8, objects_per_page=2)
        a, b = object(), object()
        pool.access(a)
        # The next new object lands on the same page -> a buffer hit.
        assert pool.access(b) is True

    def test_resident_bounded_by_capacity(self):
        pool = BufferPool(capacity=3)
        objects = [object() for _ in range(10)]
        for obj in objects:
            pool.access(obj)
        assert pool.resident_pages == 3

    def test_clear_empties_pool(self):
        pool = BufferPool(capacity=4)
        marker = object()
        pool.access(marker)
        pool.clear()
        assert pool.resident_pages == 0
        assert pool.access(marker) is False  # cold again


class TestAttachment:
    def test_attach_and_detach(self):
        cube = DynamicDataCube.from_array(dense_uniform((32, 32), seed=1))
        pool = attach_pool(cube, BufferPool(capacity=128))
        cube.prefix_sum((31, 31))
        seen = pool.stats.accesses
        assert seen > 0
        detach_pool(cube)
        cube.prefix_sum((31, 31))
        assert pool.stats.accesses == seen  # no longer tracking

    def test_counters_unaffected_by_tracking(self):
        cube = DynamicDataCube.from_array(dense_uniform((32, 32), seed=2))
        cube.stats.reset()
        cube.prefix_sum((31, 31))
        baseline = cube.stats.total_cell_ops
        attach_pool(cube, BufferPool(capacity=16))
        cube.stats.reset()
        cube.prefix_sum((31, 31))
        assert cube.stats.total_cell_ops == baseline

    def test_secondary_structures_report_through_shared_counter(self):
        cube = DynamicDataCube.from_array(dense_uniform((64, 64), seed=3))
        pool = attach_pool(cube, BufferPool(capacity=10_000))
        cube.prefix_sum((63, 62))
        # A 2-d DDC query touches primary nodes, overlays, and B^c nodes:
        # strictly more objects than the primary path alone.
        primary_levels = cube.height()
        assert pool.stats.accesses > primary_levels

    def test_bc_tree_standalone_tracking(self):
        tree = BcTree.from_values(list(range(1024)), fanout=4)
        pool = BufferPool(capacity=64)
        tree.stats.tracker = pool
        tree.prefix_sum(777)
        assert pool.stats.accesses == tree.height()


class TestIoBehaviour:
    def test_repeated_query_is_fully_cached(self):
        cube = DynamicDataCube.from_array(dense_uniform((64, 64), seed=4))
        pool = attach_pool(cube, BufferPool(capacity=10_000))
        cube.prefix_sum((50, 50))
        pool.stats.reset()
        cube.prefix_sum((50, 50))
        assert pool.stats.misses == 0
        assert pool.stats.hit_rate == 1.0

    def test_tiny_pool_thrashes(self):
        cube = DynamicDataCube.from_array(dense_uniform((64, 64), seed=5))
        big = attach_pool(cube, BufferPool(capacity=100_000))
        for index in range(50):
            cube.prefix_sum((index % 64, (index * 13) % 64))
        big_rate = big.stats.hit_rate
        tiny = attach_pool(cube, BufferPool(capacity=2))
        for index in range(50):
            cube.prefix_sum((index % 64, (index * 13) % 64))
        assert tiny.stats.hit_rate < big_rate

    def test_shallower_trees_touch_fewer_pages(self):
        """Section 4.4's I/O claim: fewer levels, fewer accesses."""
        data = dense_uniform((128, 128), seed=6)
        accesses = {}
        for leaf_side in (2, 16):
            cube = DynamicDataCube.from_array(data, leaf_side=leaf_side)
            pool = attach_pool(cube, BufferPool(capacity=1))  # every touch ~ an I/O
            for index in range(30):
                cube.prefix_sum(((index * 11) % 128, (index * 29) % 128))
            accesses[leaf_side] = pool.stats.accesses
        assert accesses[16] < accesses[2]
