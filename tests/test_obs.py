"""Tests for repro.obs: clock, metrics, tracing, slow-query capture.

The deterministic half injects :class:`ManualClock` so durations and
histogram contents are exact; the acceptance half drives a real
:class:`ShardedEngine` workload and checks the full contract — a
Prometheus exposition with per-shard latency histograms and cache
hit/stale counters, a JSON export carrying the same values, and a
slow-query record whose span tree shows engine→shard→method nesting
with per-span OpCounter deltas.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import ShardedEngine
from repro.exceptions import ConfigurationError
from repro.obs import (
    DEFAULT_LATENCY_BUCKETS,
    NULL_OBS,
    NULL_SPAN,
    ManualClock,
    MetricsRegistry,
    NullRegistry,
    Observability,
    SlowQueryLog,
    Tracer,
    render_span_tree,
    sorted_by_duration,
)
from repro.counters import OpCounter


class TestManualClock:
    def test_advance(self):
        clock = ManualClock(start=5.0)
        assert clock.now() == 5.0
        clock.advance(2.5)
        assert clock.now() == 7.5

    def test_cannot_go_backwards(self):
        with pytest.raises(ConfigurationError):
            ManualClock().advance(-1.0)


class TestCounterAndGauge:
    def test_counter_inc(self):
        registry = MetricsRegistry()
        counter = registry.counter("events_total", "Events.")
        counter.inc()
        counter.inc(3)
        assert counter.value == 4.0

    def test_counter_rejects_negative(self):
        counter = MetricsRegistry().counter("events_total", "Events.")
        with pytest.raises(ConfigurationError):
            counter.inc(-1)

    def test_gauge_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("level", "Level.")
        gauge.set(10)
        assert gauge.value == 10.0
        child = gauge.labels()
        child.inc(2)
        child.dec(5)
        assert gauge.value == 7.0

    def test_labelled_children_are_cached(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits", "Hits.", labels=("shard",))
        a = counter.labels(shard="0")
        assert counter.labels(shard="0") is a
        assert counter.labels(shard="1") is not a

    def test_wrong_labels_raise(self):
        counter = MetricsRegistry().counter("hits", "Hits.", labels=("shard",))
        with pytest.raises(ConfigurationError):
            counter.labels(worker="0")
        with pytest.raises(ConfigurationError):
            counter.inc()  # label-less use of a labelled family

    def test_reregistration_is_idempotent_but_typed(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits", "Hits.", labels=("shard",))
        assert registry.counter("hits", "ignored", labels=("shard",)) is counter
        with pytest.raises(ConfigurationError):
            registry.gauge("hits", "Hits.", labels=("shard",))
        with pytest.raises(ConfigurationError):
            registry.counter("hits", "Hits.", labels=("other",))

    def test_invalid_names_raise(self):
        registry = MetricsRegistry()
        with pytest.raises(ConfigurationError):
            registry.counter("0bad", "Bad.")
        with pytest.raises(ConfigurationError):
            registry.counter("ok_total", "Bad label.", labels=("0bad",))


class TestHistogram:
    def test_bucketing_and_counts(self):
        histogram = MetricsRegistry().histogram(
            "lat", "Latency.", buckets=(1.0, 2.0, 4.0)
        )
        for value in (0.5, 1.0, 1.5, 3.0, 100.0):
            histogram.observe(value)
        child = histogram.labels()
        assert child.count == 5
        assert child.sum == pytest.approx(106.0)
        # bucket counts: <=1: {0.5, 1.0}, <=2: {1.5}, <=4: {3.0}, +Inf: {100}
        assert child.counts == [2, 1, 1, 1]
        assert child.cumulative() == [2, 3, 4, 5]

    def test_quantiles_interpolate(self):
        histogram = MetricsRegistry().histogram(
            "lat", "Latency.", buckets=(1.0, 2.0)
        )
        for _ in range(10):
            histogram.observe(0.5)
        # all mass in the first bucket: p50 interpolates to half its width
        assert histogram.quantile(0.5) == pytest.approx(0.5)
        assert histogram.quantile(1.0) == pytest.approx(1.0)

    def test_quantile_empty_and_clamp(self):
        histogram = MetricsRegistry().histogram(
            "lat", "Latency.", buckets=(1.0, 2.0)
        )
        assert histogram.quantile(0.99) == 0.0
        histogram.observe(50.0)  # lands in +Inf
        assert histogram.quantile(0.99) == 2.0  # clamps to top finite bound
        with pytest.raises(ConfigurationError):
            histogram.quantile(1.5)

    def test_default_ladder_is_log_scale(self):
        assert DEFAULT_LATENCY_BUCKETS[0] == pytest.approx(1e-6)
        ratios = [
            b / a
            for a, b in zip(DEFAULT_LATENCY_BUCKETS, DEFAULT_LATENCY_BUCKETS[1:])
        ]
        assert all(r == pytest.approx(4.0) for r in ratios)

    def test_bad_buckets_raise(self):
        registry = MetricsRegistry()
        with pytest.raises(ConfigurationError):
            registry.histogram("lat", "Latency.", buckets=())
        with pytest.raises(ConfigurationError):
            registry.histogram("lat", "Latency.", buckets=(2.0, 1.0))


def _histogram_samples_from_prometheus(text: str, name: str):
    """Parse one histogram family out of the text exposition.

    Returns ``{labels-frozenset: {"buckets": {le: count}, "sum": float,
    "count": int}}`` — just enough structure to cross-check the JSON
    export sample for sample.
    """
    import re

    samples: dict = {}
    pattern = re.compile(
        rf"^{name}_(bucket|sum|count)(?:{{(.*)}})? (\S+)$", re.M
    )
    for kind, raw_labels, raw_value in pattern.findall(text):
        labels = {}
        if raw_labels:
            for part in re.findall(r'(\w+)="((?:[^"\\]|\\.)*)"', raw_labels):
                labels[part[0]] = part[1]
        le = labels.pop("le", None)
        key = frozenset(labels.items())
        entry = samples.setdefault(key, {"buckets": {}, "sum": None, "count": None})
        if kind == "bucket":
            entry["buckets"][le] = int(raw_value)
        elif kind == "sum":
            entry["sum"] = float(raw_value)
        else:
            entry["count"] = int(raw_value)
    return samples


class TestExposition:
    def _populated_registry(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        hits = registry.counter("cache_hits_total", "Hits.", labels=("result",))
        hits.labels(result="hit").inc(3)
        hits.labels(result="stale").inc()
        registry.gauge("entries", "Entries.").set(7)
        lat = registry.histogram("lat_seconds", "Latency.", buckets=(0.001, 0.01))
        for value in (0.0005, 0.002, 5.0):
            lat.observe(value)
        return registry

    def test_prometheus_text_format(self):
        text = self._populated_registry().render_prometheus()
        assert "# HELP cache_hits_total Hits.\n" in text
        assert "# TYPE cache_hits_total counter\n" in text
        assert 'cache_hits_total{result="hit"} 3\n' in text
        assert 'cache_hits_total{result="stale"} 1\n' in text
        assert "entries 7\n" in text
        assert 'lat_seconds_bucket{le="0.001"} 1\n' in text
        assert 'lat_seconds_bucket{le="0.01"} 2\n' in text
        assert 'lat_seconds_bucket{le="+Inf"} 3\n' in text
        assert "lat_seconds_count 3\n" in text

    def test_json_matches_prometheus(self):
        registry = self._populated_registry()
        text = registry.render_prometheus()
        doc = registry.to_json()
        by_name = {family["name"]: family for family in doc["metrics"]}

        hits = {
            sample["labels"]["result"]: sample["value"]
            for sample in by_name["cache_hits_total"]["samples"]
        }
        assert hits == {"hit": 3.0, "stale": 1.0}
        assert by_name["entries"]["samples"][0]["value"] == 7.0

        prom = _histogram_samples_from_prometheus(text, "lat_seconds")
        (json_sample,) = by_name["lat_seconds"]["samples"]
        (prom_sample,) = prom.values()
        assert {
            bucket["le"]: bucket["count"] for bucket in json_sample["buckets"]
        } == prom_sample["buckets"]
        assert json_sample["count"] == prom_sample["count"]
        assert json_sample["sum"] == pytest.approx(prom_sample["sum"])

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.counter("odd", "Odd.", labels=("tag",)).labels(
            tag='a"b\\c\nd'
        ).inc()
        text = registry.render_prometheus()
        assert 'odd{tag="a\\"b\\\\c\\nd"} 1' in text

    def test_null_registry(self):
        registry = NullRegistry()
        instrument = registry.counter("x", "X.")
        assert instrument.labels(anything="goes") is instrument
        instrument.inc()
        instrument.observe(1.0)
        instrument.set(2.0)
        assert instrument.value == 0.0
        assert registry.render_prometheus() == ""
        assert registry.to_json() == {"metrics": []}


class TestTracer:
    def test_nesting_and_exact_durations(self):
        clock = ManualClock()
        tracer = Tracer(clock=clock)
        with tracer.span("outer", kind="root") as outer:
            clock.advance(1.0)
            with tracer.span("inner") as inner:
                clock.advance(0.25)
            clock.advance(1.0)
        assert outer.duration == pytest.approx(2.25)
        assert inner.duration == pytest.approx(0.25)
        assert outer.children == [inner]
        assert outer.attributes == {"kind": "root"}
        roots = tracer.finished_roots()
        assert roots == [outer]
        assert list(outer.walk()) == [outer, inner]

    def test_current_tracks_innermost(self):
        tracer = Tracer(clock=ManualClock())
        assert tracer.current() is None
        with tracer.span("outer") as outer:
            assert tracer.current() is outer
            with tracer.span("inner") as inner:
                assert tracer.current() is inner
            assert tracer.current() is outer
        assert tracer.current() is None

    def test_explicit_parent_attaches_across_threads(self):
        import threading

        tracer = Tracer(clock=ManualClock())
        with tracer.span("request") as request:
            def worker():
                # pool threads have an empty span stack of their own;
                # without parent= this would become a separate root.
                with tracer.span("shard", parent=request, shard=1):
                    pass
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert [child.name for child in request.children] == ["shard"]
        assert tracer.finished_roots() == [request]

    def test_ring_buffer_evicts_oldest(self):
        tracer = Tracer(clock=ManualClock(), capacity=2)
        for index in range(3):
            with tracer.span(f"root{index}"):
                pass
        assert [span.name for span in tracer.finished_roots()] == [
            "root1",
            "root2",
        ]
        tracer.clear()
        assert tracer.finished_roots() == []

    def test_head_sampling_suppresses_whole_subtrees(self):
        tracer = Tracer(clock=ManualClock(), sample_every=2)
        for index in range(4):
            with tracer.span(f"root{index}") as root:
                with tracer.span("child"):
                    pass
            if index % 2 == 0:
                assert root is not NULL_SPAN
            else:
                assert root is NULL_SPAN
        names = [span.name for span in tracer.finished_roots()]
        assert names == ["root0", "root2"]
        for span in tracer.finished_roots():
            assert [child.name for child in span.children] == ["child"]

    def test_invalid_configuration(self):
        with pytest.raises(ConfigurationError):
            Tracer(capacity=0)
        with pytest.raises(ConfigurationError):
            Tracer(sample_every=0)

    def test_render_and_sort(self):
        clock = ManualClock()
        tracer = Tracer(clock=clock)
        with tracer.span("fast"):
            clock.advance(10e-6)
        with tracer.span("slow", cache="miss") as slow:
            clock.advance(2e-3)
            with tracer.span("child", depth=3):
                clock.advance(1e-3)
        ranked = sorted_by_duration(tracer.finished_roots())
        assert [span.name for span in ranked] == ["slow", "fast"]
        text = render_span_tree(slow)
        lines = text.splitlines()
        assert lines[0] == "slow 3.0ms {cache=miss}"
        assert lines[1] == "  child 1.0ms {depth=3}"


class TestSlowQueryLog:
    def _ops(self, reads: int = 5) -> OpCounter:
        ops = OpCounter()
        ops.cell_reads = reads
        return ops

    def test_latency_threshold(self):
        log = SlowQueryLog(latency_threshold=0.01)
        assert not log.consider(NULL_SPAN, self._ops(), 0.005, op="q")
        assert log.consider(NULL_SPAN, self._ops(), 0.02, op="q")
        assert log.qualified == 1
        (record,) = log.records()
        assert record.seconds == 0.02
        assert record.attributes == {"op": "q"}

    def test_op_threshold(self):
        log = SlowQueryLog(latency_threshold=9e9, op_threshold=100)
        assert not log.consider(NULL_SPAN, self._ops(reads=50), 0.0)
        assert log.consider(NULL_SPAN, self._ops(reads=200), 0.0)

    def test_sampling_counts_dropped_records(self):
        log = SlowQueryLog(sample_rate=0.0)
        assert not log.consider(NULL_SPAN, self._ops(), 1.0)
        assert log.qualified == 1
        assert log.sampled_out == 1
        assert len(log) == 0

    def test_ring_and_slowest(self):
        log = SlowQueryLog(capacity=2)
        for seconds in (0.3, 0.1, 0.2):
            log.consider(NULL_SPAN, self._ops(), seconds)
        assert len(log) == 2  # 0.3 evicted by the ring
        assert [r.seconds for r in log.slowest(2)] == [0.2, 0.1]
        log.clear()
        assert len(log) == 0

    def test_render_includes_ops_and_tree(self):
        clock = ManualClock()
        tracer = Tracer(clock=clock)
        with tracer.span("engine.range_sum", cache="miss") as span:
            clock.advance(0.002)
        log = SlowQueryLog()
        log.consider(span, self._ops(reads=7), 0.002, op="range_sum")
        text = log.records()[0].render()
        assert "slow query: 2.000ms (op=range_sum)" in text
        assert "reads=7" in text
        assert "engine.range_sum 2.0ms {cache=miss}" in text

    def test_invalid_configuration(self):
        with pytest.raises(ConfigurationError):
            SlowQueryLog(capacity=0)
        with pytest.raises(ConfigurationError):
            SlowQueryLog(sample_rate=1.5)
        with pytest.raises(ConfigurationError):
            SlowQueryLog(latency_threshold=-1.0)


class TestObservabilityFacade:
    def test_shared_instruments_preregistered(self):
        obs = Observability()
        names = {family.name for family in obs.metrics.collect()}
        assert {
            "repro_method_query_seconds",
            "repro_method_query_ops",
            "repro_method_batch_path_total",
            "repro_tree_descent_depth",
        } <= names

    def test_disabled_is_inert_and_shared(self):
        assert NULL_OBS.enabled is False
        assert isinstance(NULL_OBS.metrics, NullRegistry)
        with NULL_OBS.span("anything", key=1) as span:
            span.set(more=2)
        assert NULL_OBS.tracer.finished_roots() == []
        assert NULL_OBS.metrics.render_prometheus() == ""
        with pytest.raises(ConfigurationError):
            Observability.disabled().enable()

    def test_enable_disable_toggle(self):
        obs = Observability()
        assert obs.enabled
        obs.disable()
        assert not obs.enabled
        obs.enable()
        assert obs.enabled

    def test_components_share_the_injected_clock(self):
        clock = ManualClock()
        obs = Observability(clock=clock)
        assert obs.clock is clock
        assert obs.tracer.clock is clock


def _drive_workload(obs: Observability) -> ShardedEngine:
    """A tiny deterministic serving session covering every outcome.

    miss (cold read) → hit (repeat) → stale (repeat after a write to
    the queried shard) → a multi-shard batch, on a 2-shard engine.
    """
    rng = np.random.default_rng(7)
    data = rng.integers(0, 9, size=(16, 16))
    engine = ShardedEngine.from_array(data, shards=2, method="ddc", obs=obs)
    engine.reset_stats()
    query = ((0, 0), (5, 5))          # entirely inside shard 0
    engine.range_sum(*query)          # miss
    engine.range_sum(*query)          # hit
    engine.add((2, 2), 3)             # bumps shard 0's epoch
    engine.range_sum(*query)          # stale
    engine.range_sum_many([query, ((0, 0), (15, 15)), ((9, 0), (14, 15))])
    return engine


class TestEngineAcceptance:
    """ISSUE acceptance: exposition, matching JSON, slow-query nesting."""

    def test_exposition_covers_shards_and_cache_outcomes(self):
        obs = Observability()
        engine = _drive_workload(obs)
        try:
            text = obs.metrics.render_prometheus()
            # Per-shard latency histograms.
            assert (
                'repro_engine_shard_seconds_bucket{shard="0",op="range_sum"'
                in text
            )
            assert "# TYPE repro_engine_shard_seconds histogram" in text
            # Cache outcome counters: all three results observed.
            assert 'repro_engine_cache_lookups_total{result="miss"} ' in text
            assert 'repro_engine_cache_lookups_total{result="hit"} ' in text
            assert 'repro_engine_cache_lookups_total{result="stale"} 1' in text
            # Gauges track live state (epoch matches the engine's own).
            assert (
                f'repro_engine_shard_epoch{{shard="0"}} {engine.epochs[0]}'
                in text
            )
            assert "repro_engine_cache_entries " in text
            # Tree instrumentation reached the primary structure.
            assert (
                'repro_tree_descent_depth_bucket{structure="ddc",op="query"'
                in text
            )
            assert (
                'repro_tree_descent_depth_bucket{structure="ddc",op="update"'
                in text
            )
        finally:
            engine.close()

    def test_json_export_matches_exposition(self):
        obs = Observability()
        engine = _drive_workload(obs)
        try:
            text = obs.metrics.render_prometheus()
            doc = obs.metrics.to_json()
            by_name = {family["name"]: family for family in doc["metrics"]}

            lookups = {
                sample["labels"]["result"]: sample["value"]
                for sample in by_name["repro_engine_cache_lookups_total"][
                    "samples"
                ]
            }
            for result, value in lookups.items():
                assert (
                    f'repro_engine_cache_lookups_total{{result="{result}"}} '
                    f"{int(value)}\n"
                ) in text

            prom = _histogram_samples_from_prometheus(
                text, "repro_engine_shard_seconds"
            )
            for sample in by_name["repro_engine_shard_seconds"]["samples"]:
                key = frozenset(sample["labels"].items())
                assert {
                    bucket["le"]: bucket["count"]
                    for bucket in sample["buckets"]
                } == prom[key]["buckets"]
                assert sample["count"] == prom[key]["count"]
        finally:
            engine.close()

    def test_slow_query_records_nested_tree_with_op_deltas(self):
        # latency threshold 0.0 → every cache-missing query qualifies
        obs = Observability()
        engine = _drive_workload(obs)
        try:
            records = obs.slow_log.records()
            assert records, "no slow-query records captured"
            scalar = [
                r for r in records if r.attributes.get("op") == "range_sum"
            ]
            assert scalar, "no scalar range_sum record"
            record = scalar[0]
            # The paper's cost axis rides along: a real OpCounter diff.
            assert record.ops.node_visits > 0
            root = record.span
            assert root.name == "engine.range_sum"
            assert root.attributes["cache"] in ("miss", "stale")
            (shard_span,) = root.children
            assert shard_span.name == "shard.range_sum"
            method_spans = [
                child
                for child in shard_span.children
                if child.name == "method.range_sum"
            ]
            assert method_spans, "no method-level span under the shard span"
            method_span = method_spans[0]
            # Per-span OpCounter deltas.
            assert method_span.attributes["node_visits"] > 0
            assert "cell_reads" in method_span.attributes
            tree_spans = [
                child
                for child in method_span.children
                if child.name == "tree.prefix_sum"
            ]
            assert tree_spans, "no tree-level span under the method span"
            assert tree_spans[0].attributes["depth"] >= 1
        finally:
            engine.close()

    def test_batch_query_traces_nest_across_executor_threads(self):
        obs = Observability()
        rng = np.random.default_rng(8)
        data = rng.integers(0, 9, size=(16, 16))
        engine = ShardedEngine.from_array(
            data, shards=2, method="ddc", workers=2, obs=obs
        )
        try:
            engine.range_sum_many([((0, 0), (15, 15)), ((1, 1), (14, 14))])
            batch_roots = [
                span
                for span in obs.tracer.finished_roots()
                if span.name == "engine.range_sum_many"
            ]
            assert batch_roots
            root = batch_roots[0]
            assert root.attributes["queries"] == 2
            shard_names = {child.name for child in root.children}
            # shard spans created on pool threads still attach under the
            # request root (explicit parent capture).
            assert shard_names == {"shard.range_sum"}
            assert len(root.children) >= 2
        finally:
            engine.close()

    def test_instrumentation_does_not_change_results(self):
        rng = np.random.default_rng(9)
        data = rng.integers(0, 9, size=(12, 12))
        queries = [((0, 0), (11, 11)), ((2, 3), (9, 10)), ((5, 5), (5, 5))]
        plain = ShardedEngine.from_array(data, shards=3, method="ddc")
        traced = ShardedEngine.from_array(
            data, shards=3, method="ddc", obs=Observability()
        )
        try:
            for low, high in queries:
                assert plain.range_sum(low, high) == traced.range_sum(low, high)
            plain.add((4, 4), 5)
            traced.add((4, 4), 5)
            assert plain.range_sum_many(queries) == traced.range_sum_many(
                queries
            )
        finally:
            plain.close()
            traced.close()

    def test_default_engine_stays_dark(self):
        rng = np.random.default_rng(10)
        data = rng.integers(0, 9, size=(8, 8))
        engine = ShardedEngine.from_array(data, shards=2, method="ddc")
        try:
            assert engine.obs is NULL_OBS
            engine.range_sum((0, 0), (7, 7))
            engine.add((1, 1), 2)
            assert NULL_OBS.tracer.finished_roots() == []
            assert NULL_OBS.metrics.render_prometheus() == ""
        finally:
            engine.close()
