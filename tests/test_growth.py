"""Tests for dynamic growth in any direction (Section 5)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.growth import GrowableCube
from repro.exceptions import DimensionMismatchError, InvalidRangeError
from repro.workloads import growth_stream


class TestBasics:
    def test_empty_cube(self):
        cube = GrowableCube(dims=2)
        assert cube.total() == 0
        assert cube.get((0, 0)) == 0
        assert cube.range_sum((-100, -100), (100, 100)) == 0
        assert cube.bounds is None

    def test_single_point(self):
        cube = GrowableCube(dims=2)
        cube.add((5, -3), 7)
        assert cube.get((5, -3)) == 7
        assert cube.total() == 7
        assert cube.bounds == ((5, -3), (5, -3))

    def test_first_point_anchors_domain(self):
        cube = GrowableCube(dims=2, initial_side=8)
        cube.add((1000, 1000), 1)
        # No growth needed: the domain re-anchored around the first point.
        assert cube.side == 8
        assert cube.get((1000, 1000)) == 1

    def test_dimension_validation(self):
        cube = GrowableCube(dims=2)
        with pytest.raises(DimensionMismatchError):
            cube.add((1, 2, 3), 1)
        with pytest.raises(DimensionMismatchError):
            GrowableCube(dims=0)

    def test_initial_side_validation(self):
        with pytest.raises(ValueError):
            GrowableCube(dims=2, initial_side=10)

    def test_one_dimensional(self):
        cube = GrowableCube(dims=1)
        cube.add(5, 2)
        cube.add(-5, 3)
        assert cube.range_sum(-10, 10) == 5
        assert cube.range_sum(0, 10) == 2


class TestGrowthDirections:
    def test_grows_upward(self):
        cube = GrowableCube(dims=2, initial_side=4)
        cube.add((0, 0), 1)
        cube.add((100, 100), 2)
        assert cube.get((0, 0)) == 1
        assert cube.get((100, 100)) == 2
        assert cube.total() == 3

    def test_grows_downward(self):
        """The paper's headline: growth toward *negative* coordinates."""
        cube = GrowableCube(dims=2, initial_side=4)
        cube.add((0, 0), 1)
        cube.add((-100, -100), 2)
        assert cube.get((-100, -100)) == 2
        assert cube.range_sum((-200, -200), (0, 0)) == 3

    def test_grows_mixed_directions(self):
        cube = GrowableCube(dims=3, initial_side=4)
        cube.add((0, 0, 0), 1)
        cube.add((-50, 60, -70), 2)
        cube.add((80, -90, 100), 4)
        assert cube.total() == 7
        assert cube.get((-50, 60, -70)) == 2
        assert cube.range_sum((-100, -100, -100), (0, 100, 0)) == 3

    def test_set_grows_too(self):
        cube = GrowableCube(dims=2, initial_side=4)
        cube.set((0, 0), 5)
        cube.set((-30, 40), 6)
        cube.set((-30, 40), 2)
        assert cube.get((-30, 40)) == 2
        assert cube.total() == 7

    def test_side_doubles_per_expansion(self):
        cube = GrowableCube(dims=2, initial_side=4)
        cube.add((0, 0), 1)
        initial = cube.side
        cube.add((initial * 3, 0), 1)
        assert cube.side > initial
        assert (cube.side & (cube.side - 1)) == 0  # still a power of two


class TestQueries:
    def test_range_clipped_to_domain(self):
        cube = GrowableCube(dims=2)
        cube.add((0, 0), 5)
        assert cube.range_sum((-(10**9), -(10**9)), (10**9, 10**9)) == 5

    def test_disjoint_range_is_zero(self):
        cube = GrowableCube(dims=2)
        cube.add((0, 0), 5)
        assert cube.range_sum((10**6, 10**6), (10**6 + 5, 10**6 + 5)) == 0

    def test_inverted_range_rejected(self):
        cube = GrowableCube(dims=2)
        cube.add((0, 0), 5)
        with pytest.raises(InvalidRangeError):
            cube.range_sum((5, 5), (0, 0))

    def test_get_outside_domain_is_zero(self):
        cube = GrowableCube(dims=2)
        cube.add((0, 0), 5)
        assert cube.get((10**8, -(10**8))) == 0


class TestSparsityEconomics:
    def test_storage_tracks_population_not_extent(self):
        """Two distant clusters must not pay for the space between them."""
        cube = GrowableCube(dims=2, initial_side=8)
        for dx in range(3):
            for dy in range(3):
                cube.add((dx, dy), 1)
                cube.add((100_000 + dx, 100_000 + dy), 1)
        extent_cells = cube.side**2
        assert extent_cells >= 100_000**2 / 4
        assert cube.memory_cells() < 2_000

    def test_expansion_preserves_queries(self):
        cube = GrowableCube(dims=2, initial_side=4)
        reference = {}
        rng = np.random.default_rng(1)
        for scale in (1, 10, 100, 1000):
            for _ in range(20):
                point = (
                    int(rng.integers(-scale, scale)),
                    int(rng.integers(-scale, scale)),
                )
                cube.add(point, 1)
                reference[point] = reference.get(point, 0) + 1
            low = (-scale, -scale)
            high = (scale, scale)
            expected = sum(
                v
                for (x, y), v in reference.items()
                if low[0] <= x <= high[0] and low[1] <= y <= high[1]
            )
            assert cube.range_sum(low, high) == expected


class TestAgainstDictOracle:
    @settings(max_examples=30, deadline=None)
    @given(
        points=st.lists(
            st.tuples(
                st.integers(-500, 500), st.integers(-500, 500), st.integers(1, 9)
            ),
            max_size=60,
        ),
        probes=st.lists(
            st.tuples(st.integers(-600, 600), st.integers(-600, 600)),
            min_size=1,
            max_size=10,
        ),
    )
    def test_random_points_and_ranges(self, points, probes):
        cube = GrowableCube(dims=2, initial_side=4)
        reference: dict[tuple[int, int], int] = {}
        for x, y, value in points:
            cube.add((x, y), value)
            reference[(x, y)] = reference.get((x, y), 0) + value
        assert cube.total() == sum(reference.values())
        for ax, ay in probes:
            low = (min(ax, -ax), min(ay, -ay))
            high = (max(ax, -ax), max(ay, -ay))
            expected = sum(
                v
                for (x, y), v in reference.items()
                if low[0] <= x <= high[0] and low[1] <= y <= high[1]
            )
            assert cube.range_sum(low, high) == expected


class TestWithGrowthStream:
    def test_star_catalog_stream(self):
        """End-to-end: the Section 5 astronomy scenario at small scale."""
        cube = GrowableCube(dims=2, initial_side=8)
        reference = {}
        for discovery in growth_stream(dims=2, points=300, seed=11):
            cube.add(discovery.coordinate, discovery.value)
            reference[discovery.coordinate] = (
                reference.get(discovery.coordinate, 0) + discovery.value
            )
        assert cube.total() == sum(reference.values())
        low, high = cube.bounds
        full = cube.range_sum(low, high)
        assert full == cube.total()
        # The populated bounding box is a tiny part of the domain, yet
        # storage stays proportional to the catalog.
        assert cube.memory_cells() < 60 * len(reference)
